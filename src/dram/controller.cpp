#include "dram/controller.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "telemetry/recorder.hpp"

namespace vrl::dram {

std::size_t SimulationStats::TotalReads() const {
  std::size_t n = 0;
  for (const auto& b : per_bank) {
    n += b.reads;
  }
  return n;
}

std::size_t SimulationStats::TotalWrites() const {
  std::size_t n = 0;
  for (const auto& b : per_bank) {
    n += b.writes;
  }
  return n;
}

std::size_t SimulationStats::TotalFullRefreshes() const {
  std::size_t n = 0;
  for (const auto& b : per_bank) {
    n += b.full_refreshes;
  }
  return n;
}

std::size_t SimulationStats::TotalPartialRefreshes() const {
  std::size_t n = 0;
  for (const auto& b : per_bank) {
    n += b.partial_refreshes;
  }
  return n;
}

Cycles SimulationStats::TotalRefreshBusyCycles() const {
  Cycles n = 0;
  for (const auto& b : per_bank) {
    n += b.refresh_busy_cycles;
  }
  return n;
}

std::size_t SimulationStats::TotalActivations() const {
  std::size_t n = 0;
  for (const auto& b : per_bank) {
    n += b.activations;
  }
  return n;
}

std::size_t SimulationStats::TotalRowHits() const {
  std::size_t n = 0;
  for (const auto& b : per_bank) {
    n += b.row_hits;
  }
  return n;
}

std::size_t SimulationStats::TotalRowMisses() const {
  std::size_t n = 0;
  for (const auto& b : per_bank) {
    n += b.row_misses;
  }
  return n;
}

double SimulationStats::RefreshOverheadPerBank() const {
  if (per_bank.empty()) {
    return 0.0;
  }
  return static_cast<double>(TotalRefreshBusyCycles()) /
         static_cast<double>(per_bank.size());
}

double SimulationStats::AverageRequestLatency() const {
  Cycles total = 0;
  std::size_t count = 0;
  for (const auto& b : per_bank) {
    total += b.total_request_latency;
    count += b.reads + b.writes;
  }
  return count == 0 ? 0.0
                    : static_cast<double>(total) / static_cast<double>(count);
}

MemoryController::MemoryController(std::size_t banks, std::size_t rows,
                                   const TimingParams& timing,
                                   const PolicyFactory& factory,
                                   SchedulerKind scheduler,
                                   RowBufferPolicy page_policy,
                                   std::size_t subarrays)
    : timing_(timing), scheduler_(scheduler) {
  if (banks == 0) {
    throw ConfigError("MemoryController: need at least one bank");
  }
  timing_.Validate();
  banks_.reserve(banks);
  policies_.reserve(banks);
  for (std::size_t b = 0; b < banks; ++b) {
    banks_.emplace_back(rows, timing_, page_policy, subarrays);
    auto policy = factory();
    if (!policy) {
      throw ConfigError("MemoryController: policy factory returned null");
    }
    if (policy->rows() != rows) {
      throw ConfigError("MemoryController: policy row count mismatch");
    }
    policies_.push_back(std::move(policy));
  }
}

void MemoryController::AttachTelemetry(telemetry::Recorder* recorder) {
  telemetry_ = recorder;
  for (const auto& policy : policies_) {
    policy->set_telemetry(recorder);
  }
}

SimulationStats MemoryController::Run(const std::vector<Request>& requests,
                                      Cycles horizon) {
  if (!std::is_sorted(requests.begin(), requests.end(),
                      [](const Request& a, const Request& b) {
                        return a.arrival < b.arrival;
                      })) {
    throw ConfigError("MemoryController::Run: requests must be arrival-sorted");
  }

  const telemetry::ScopedTimer run_timer(telemetry_, "time.controller_run");
  // The service loop is only tens of nanoseconds per request, so the
  // telemetry-gated per-request work is kept to this one accumulator;
  // everything else exported below is a delta of the banks' always-on
  // stats (docs/TELEMETRY.md).
  std::uint64_t reordered_picks_n = 0;
  // Run() absorbs only this run's deltas, so re-running a controller does
  // not double-count the cumulative BankStats.
  SimulationStats before;
  if (telemetry_ != nullptr) {
    for (const Bank& bank : banks_) {
      before.per_bank.push_back(bank.stats());
    }
  }

  // Split requests per bank, preserving order.
  std::vector<std::vector<Request>> queues(banks_.size());
  for (const Request& r : requests) {
    if (r.bank >= banks_.size()) {
      throw ConfigError("MemoryController::Run: request bank out of range");
    }
    queues[r.bank].push_back(r);
  }

  Cycles end = horizon;

  // Each bank runs an independent timeline: interleave its request stream
  // with the global tREFI ticks.
  for (std::size_t b = 0; b < banks_.size(); ++b) {
    Bank& bank = banks_[b];
    RefreshPolicy& policy = *policies_[b];
    const auto& queue = queues[b];
    std::size_t qi = 0;
    std::vector<Request> pending;  // arrived but not yet serviced

    // Services every request arriving before `limit`, letting the scheduler
    // reorder among the ones pending at each decision instant.
    const auto service_until = [&](Cycles limit) {
      while (true) {
        // Decision instant: when the bank frees up, or — with nothing
        // pending — when the next request arrives.
        Cycles t_decide = bank.busy_until();
        if (pending.empty()) {
          if (qi >= queue.size() || queue[qi].arrival >= limit) {
            return;
          }
          t_decide = std::max(t_decide, queue[qi].arrival);
        }
        // Everything arrived by then competes for the slot.
        while (qi < queue.size() && queue[qi].arrival <= t_decide &&
               queue[qi].arrival < limit) {
          pending.push_back(queue[qi]);
          ++qi;
        }
        const std::size_t pick = SelectNextRequest(scheduler_, pending, bank);
        bank.ServiceRequest(pending[pick]);
        policy.OnRowAccess(pending[pick].row);
        if (telemetry_ != nullptr) {
          // `pending` stays arrival-ordered, so any pick other than the
          // front is the scheduler reordering for row locality.
          reordered_picks_n += pick != 0 ? 1 : 0;
        }
        pending.erase(pending.begin() +
                      static_cast<std::ptrdiff_t>(pick));
      }
    };

    for (Cycles tick = 0; tick <= horizon; tick += timing_.t_refi) {
      // Service requests that arrived before this refresh tick.
      service_until(tick);
      // Execute the refresh operations due at this tick.  Each op waits
      // for its own subarray inside the bank; ops to distinct subarrays
      // overlap (SALP), ops to the same one serialize.
      for (const RefreshOp& op : policy.CollectDue(tick)) {
        bank.ExecuteRefresh(op, tick);
      }
    }
    // Drain any requests arriving up to the horizon after the last tick.
    service_until(horizon + 1);
    end = std::max(end, bank.stats().last_completion);
  }

  // Fold the policies' batched per-op telemetry into the recorder before
  // any caller snapshots it.
  for (const auto& policy : policies_) {
    policy->FlushTelemetry();
  }

  SimulationStats stats;
  stats.simulated_cycles = end;
  stats.per_bank.reserve(banks_.size());
  for (const Bank& bank : banks_) {
    stats.per_bank.push_back(bank.stats());
  }

  if (telemetry_ != nullptr) {
    // Everything below is a delta of the banks' always-on stats, so a
    // repeated Run() of the same controller exports only its own work.
    std::vector<std::uint64_t> latency_counts(telemetry::kLatencyBucketCount,
                                              0);
    Cycles latency_total = 0;
    std::uint64_t picks_n = 0;
    for (std::size_t b = 0; b < stats.per_bank.size(); ++b) {
      const BankStats& now = stats.per_bank[b];
      const BankStats& then = before.per_bank[b];
      for (std::size_t i = 0; i < latency_counts.size(); ++i) {
        latency_counts[i] += now.latency_hist[i] - then.latency_hist[i];
      }
      latency_total += now.total_request_latency - then.total_request_latency;
      picks_n += (now.reads + now.writes) - (then.reads + then.writes);
    }
    telemetry_->counter("scheduler.picks").Add(picks_n);
    telemetry_->counter("scheduler.reordered_picks").Add(reordered_picks_n);
    telemetry_
        ->histogram("dram.request_latency_cycles",
                    telemetry::LatencyBucketEdges())
        .MergeCounts(latency_counts, static_cast<double>(latency_total));
    const auto add = [&](std::string_view name, std::size_t now_total,
                         std::size_t before_total) {
      telemetry_->counter(name).Add(
          static_cast<std::uint64_t>(now_total - before_total));
    };
    add("dram.reads", stats.TotalReads(), before.TotalReads());
    add("dram.writes", stats.TotalWrites(), before.TotalWrites());
    add("dram.row_hits", stats.TotalRowHits(), before.TotalRowHits());
    add("dram.row_misses", stats.TotalRowMisses(), before.TotalRowMisses());
    add("dram.activations", stats.TotalActivations(),
        before.TotalActivations());
    add("dram.full_refreshes", stats.TotalFullRefreshes(),
        before.TotalFullRefreshes());
    add("dram.partial_refreshes", stats.TotalPartialRefreshes(),
        before.TotalPartialRefreshes());
    telemetry_->counter("dram.refresh_busy_cycles")
        .Add(stats.TotalRefreshBusyCycles() - before.TotalRefreshBusyCycles());
    telemetry_->counter("dram.simulated_cycles").Add(end);
  }
  return stats;
}

}  // namespace vrl::dram
