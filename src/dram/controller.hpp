#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "dram/auditor.hpp"
#include "dram/bank.hpp"
#include "dram/refresh_policy.hpp"
#include "dram/request.hpp"
#include "dram/scheduler.hpp"
#include "dram/timing.hpp"
#include "dram/timing_table.hpp"
#include "dram/topology.hpp"
#include "prof/profiler.hpp"

/// \file controller.hpp
/// The memory controller: per-bank request streams interleaved with tREFI
/// refresh ticks, each tick executing whatever refresh operations the bank's
/// policy declares due (the paper's §3.2 implementation point — VRL-DRAM
/// lives entirely in the controller).
///
/// Two run loops live side by side.  The flat loop — the original — walks
/// the banks one at a time, each on its own independent timeline; it is
/// what every TimingTable with IsHierarchical() == false gets, preserved
/// byte-for-byte (the golden-master tests in tests/golden_master_test.cpp
/// pin this).  The hierarchical loop interleaves the banks globally by
/// decision instant so the ConstraintEngine sees commands in approximate
/// issue order, and charges tRRD/tFAW/tCCD/tRTRS/bus stalls where the
/// hierarchy binds (docs/TOPOLOGY.md).

namespace vrl::dram {

/// Aggregate results of one simulation.
struct SimulationStats {
  std::vector<BankStats> per_bank;
  Cycles simulated_cycles = 0;

  // -- Aggregates over banks ---------------------------------------------------
  std::size_t TotalReads() const;
  std::size_t TotalWrites() const;
  std::size_t TotalFullRefreshes() const;
  std::size_t TotalPartialRefreshes() const;
  Cycles TotalRefreshBusyCycles() const;
  std::size_t TotalActivations() const;
  std::size_t TotalRowHits() const;
  std::size_t TotalRowMisses() const;

  /// Refresh overhead of the paper's Fig. 4: cycles spent refreshing,
  /// averaged per bank.
  double RefreshOverheadPerBank() const;

  /// Mean request latency in cycles (0 when no requests were served).
  double AverageRequestLatency() const;
};

/// Factory producing one refresh policy per bank (each bank needs its own
/// deadline/counter state).
using PolicyFactory = std::function<std::unique_ptr<RefreshPolicy>(void)>;

class MemoryController {
 public:
  /// \param banks       number of banks
  /// \param rows        rows per bank
  /// \param timing      command timing
  /// \param factory     creates the refresh policy instance for each bank
  /// \param scheduler   request scheduling discipline
  /// \param page_policy row-buffer management of every bank
  /// \param subarrays   subarrays per bank (SALP; 1 = conventional bank)
  MemoryController(std::size_t banks, std::size_t rows,
                   const TimingParams& timing, const PolicyFactory& factory,
                   SchedulerKind scheduler = SchedulerKind::kFcfs,
                   RowBufferPolicy page_policy = RowBufferPolicy::kOpenPage,
                   std::size_t subarrays = 1);

  /// Hierarchical construction: the bank count is the table's topology
  /// product and each bank knows its channel/rank/bank-group address.  A
  /// degenerate table (TimingPreset::kSingleBankEquivalent) runs the flat
  /// loop byte-for-byte; anything else runs the hierarchical loop with the
  /// table's inter-bank constraints enforced.
  MemoryController(const TimingTable& table, std::size_t rows,
                   const PolicyFactory& factory,
                   SchedulerKind scheduler = SchedulerKind::kFcfs,
                   RowBufferPolicy page_policy = RowBufferPolicy::kOpenPage,
                   std::size_t subarrays = 1);

  /// Runs the simulation: services `requests` (must be sorted by arrival)
  /// and executes refresh ticks until `horizon` cycles have elapsed (and at
  /// least until the last request completes).
  SimulationStats Run(const std::vector<Request>& requests, Cycles horizon);

  /// Attaches a telemetry recorder to the controller and every bank's
  /// refresh policy (docs/TELEMETRY.md): Run() then feeds the `dram.*`
  /// counters, the request-latency histogram and the scheduler pick
  /// counters, and the policies feed `policy.*`.  nullptr detaches.  The
  /// recorder is single-threaded — give each concurrently running
  /// controller its own (see telemetry::ShardedRecorder).
  void AttachTelemetry(telemetry::Recorder* recorder);
  telemetry::Recorder* telemetry() const { return telemetry_; }

  std::size_t banks() const { return banks_.size(); }

  const TimingTable& timing_table() const { return table_; }
  bool hierarchical() const { return hierarchical_; }

  /// Turns on command logging: every PRE/ACT/RD/WR/REF the banks issue from
  /// now on lands in the returned log, for TimingAuditor replay.  Idempotent;
  /// the log lives as long as the controller.
  CommandLog& EnableAudit();

  /// The command log, or nullptr before EnableAudit().
  const CommandLog* audit_log() const { return audit_log_.get(); }

  /// The inter-bank constraint engine (stall stats, per-rank activity), or
  /// nullptr when running flat.
  const ConstraintEngine* constraint_engine() const { return engine_.get(); }

 private:
  SimulationStats RunFlat(const std::vector<Request>& requests,
                          Cycles horizon);
  SimulationStats RunHierarchical(const std::vector<Request>& requests,
                                  Cycles horizon);
  /// Per-run phase costs under --profile: sampled 1-in-N wall clock with
  /// exact call counts (prof::PhaseAccumulator), plus the unsampled
  /// telemetry-flush time.
  struct PhaseProfile {
    prof::PhaseAccumulator scheduler;
    prof::PhaseAccumulator collect;
    double flush_s = 0.0;
  };
  /// Folds one run's phase costs into the `time.phase.*` timers and the
  /// attribution profiler.  Shared by both run loops so the flat and
  /// hierarchical phase breakdowns cannot drift.  Requires telemetry.
  void FoldPhaseProfile(const PhaseProfile& phases, std::uint64_t serviced,
                        std::uint64_t granted);
  /// The per-run telemetry delta export shared by both loops.
  void ExportRunTelemetry(const SimulationStats& before,
                          const SimulationStats& stats,
                          std::uint64_t reordered_picks_n, Cycles end);
  /// Exports `dram.refresh.*` grant/deferral counters — only when the run
  /// saw non-urgent proposals (scheduler-coupled policies), so legacy runs
  /// register nothing new.
  void ExportGrantTelemetry(const RefreshGrantStats& grants);

  TimingTable table_;
  TimingParams timing_;  ///< = table_.core (the flat loop's working copy).
  bool hierarchical_ = false;
  SchedulerKind scheduler_;
  std::vector<Bank> banks_;
  std::vector<std::unique_ptr<RefreshPolicy>> policies_;
  std::unique_ptr<ConstraintEngine> engine_;  ///< Hierarchical runs only.
  std::unique_ptr<CommandLog> audit_log_;     ///< Non-null after EnableAudit.
  telemetry::Recorder* telemetry_ = nullptr;
};

}  // namespace vrl::dram
