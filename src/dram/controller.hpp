#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "dram/bank.hpp"
#include "dram/refresh_policy.hpp"
#include "dram/request.hpp"
#include "dram/scheduler.hpp"
#include "dram/timing.hpp"

/// \file controller.hpp
/// The memory controller: per-bank request streams interleaved with tREFI
/// refresh ticks, each tick executing whatever refresh operations the bank's
/// policy declares due (the paper's §3.2 implementation point — VRL-DRAM
/// lives entirely in the controller).

namespace vrl::dram {

/// Aggregate results of one simulation.
struct SimulationStats {
  std::vector<BankStats> per_bank;
  Cycles simulated_cycles = 0;

  // -- Aggregates over banks ---------------------------------------------------
  std::size_t TotalReads() const;
  std::size_t TotalWrites() const;
  std::size_t TotalFullRefreshes() const;
  std::size_t TotalPartialRefreshes() const;
  Cycles TotalRefreshBusyCycles() const;
  std::size_t TotalActivations() const;
  std::size_t TotalRowHits() const;
  std::size_t TotalRowMisses() const;

  /// Refresh overhead of the paper's Fig. 4: cycles spent refreshing,
  /// averaged per bank.
  double RefreshOverheadPerBank() const;

  /// Mean request latency in cycles (0 when no requests were served).
  double AverageRequestLatency() const;
};

/// Factory producing one refresh policy per bank (each bank needs its own
/// deadline/counter state).
using PolicyFactory = std::function<std::unique_ptr<RefreshPolicy>(void)>;

class MemoryController {
 public:
  /// \param banks       number of banks
  /// \param rows        rows per bank
  /// \param timing      command timing
  /// \param factory     creates the refresh policy instance for each bank
  /// \param scheduler   request scheduling discipline
  /// \param page_policy row-buffer management of every bank
  /// \param subarrays   subarrays per bank (SALP; 1 = conventional bank)
  MemoryController(std::size_t banks, std::size_t rows,
                   const TimingParams& timing, const PolicyFactory& factory,
                   SchedulerKind scheduler = SchedulerKind::kFcfs,
                   RowBufferPolicy page_policy = RowBufferPolicy::kOpenPage,
                   std::size_t subarrays = 1);

  /// Runs the simulation: services `requests` (must be sorted by arrival)
  /// and executes refresh ticks until `horizon` cycles have elapsed (and at
  /// least until the last request completes).
  SimulationStats Run(const std::vector<Request>& requests, Cycles horizon);

  /// Attaches a telemetry recorder to the controller and every bank's
  /// refresh policy (docs/TELEMETRY.md): Run() then feeds the `dram.*`
  /// counters, the request-latency histogram and the scheduler pick
  /// counters, and the policies feed `policy.*`.  nullptr detaches.  The
  /// recorder is single-threaded — give each concurrently running
  /// controller its own (see telemetry::ShardedRecorder).
  void AttachTelemetry(telemetry::Recorder* recorder);
  telemetry::Recorder* telemetry() const { return telemetry_; }

  std::size_t banks() const { return banks_.size(); }

 private:
  TimingParams timing_;
  SchedulerKind scheduler_;
  std::vector<Bank> banks_;
  std::vector<std::unique_ptr<RefreshPolicy>> policies_;
  telemetry::Recorder* telemetry_ = nullptr;
};

}  // namespace vrl::dram
