#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/units.hpp"

/// \file topology.hpp
/// The DRAM device hierarchy — Channel → Rank → BankGroup → Bank — and the
/// inter-bank timing-constraint engine that enforces it.
///
/// The flat MemoryController keeps addressing banks by one index; Topology
/// maps that index onto the hierarchy (channel-major, then rank, then bank
/// group) so existing traces and policies are untouched.  The degenerate
/// topology (one channel, one rank, one group) is exactly today's flat
/// model: no constraint below ever binds and the controller runs its
/// original per-bank loop byte-for-byte (see TimingPreset::
/// kSingleBankEquivalent in timing_table.hpp).
///
/// The ConstraintEngine is the *active* half of the timing story: the bank
/// asks it for the earliest legal issue cycle of each ACTIVATE / column
/// command / data burst and reports what it actually issued.  The *passive*
/// half is the TimingAuditor (auditor.hpp), an independent re-implementation
/// that replays a recorded command stream and flags every window violation —
/// the two are deliberately separate code so an engine bug cannot hide from
/// the audit.

namespace vrl::dram {

struct TimingTable;  // timing_table.hpp

/// Bank counts at each level of the hierarchy.  Total banks is the product;
/// the flat bank index decomposes channel-major (see DecomposeBank).
struct Topology {
  std::size_t channels = 1;
  std::size_t ranks_per_channel = 1;
  std::size_t bank_groups_per_rank = 1;
  std::size_t banks_per_group = 1;

  std::size_t TotalBanks() const {
    return channels * ranks_per_channel * bank_groups_per_rank *
           banks_per_group;
  }
  std::size_t BanksPerRank() const {
    return bank_groups_per_rank * banks_per_group;
  }
  std::size_t BanksPerChannel() const {
    return ranks_per_channel * BanksPerRank();
  }
  std::size_t TotalRanks() const { return channels * ranks_per_channel; }

  /// True when the hierarchy collapses to today's flat bank list.
  bool IsDegenerate() const {
    return channels == 1 && ranks_per_channel == 1 &&
           bank_groups_per_rank == 1;
  }

  /// \throws vrl::ConfigError when any level is zero.
  void Validate() const;

  bool operator==(const Topology&) const = default;
};

/// A flat bank index decomposed onto the hierarchy.
struct BankAddress {
  std::size_t channel = 0;
  std::size_t rank = 0;        ///< Within the channel.
  std::size_t bank_group = 0;  ///< Within the rank.
  std::size_t bank = 0;        ///< Within the bank group.

  bool operator==(const BankAddress&) const = default;
};

/// Decomposes a flat bank index (channel-major: channel, then rank, then
/// bank group, then bank).  \throws vrl::ConfigError when out of range.
BankAddress DecomposeBank(const Topology& topology, std::size_t flat);

/// Inverse of DecomposeBank.  \throws vrl::ConfigError on a field out of
/// range.
std::size_t FlattenBank(const Topology& topology, const BankAddress& addr);

/// Stall accounting of the constraint engine: how often — and for how many
/// cycles — each inter-bank window pushed a command past its natural issue
/// cycle.  Exported as `dram.hier.*` telemetry by the controller.
struct ConstraintStats {
  std::uint64_t trrd_stalls = 0;
  Cycles trrd_stall_cycles = 0;
  std::uint64_t tfaw_stalls = 0;
  Cycles tfaw_stall_cycles = 0;
  std::uint64_t tccd_stalls = 0;
  Cycles tccd_stall_cycles = 0;
  std::uint64_t trtrs_stalls = 0;
  Cycles trtrs_stall_cycles = 0;
  std::uint64_t bus_stalls = 0;  ///< Channel data-bus occupancy (same rank).
  Cycles bus_stall_cycles = 0;

  std::uint64_t TotalStalls() const {
    return trrd_stalls + tfaw_stalls + tccd_stalls + trtrs_stalls +
           bus_stalls;
  }
};

/// Per-rank activity counters (activations, column commands) and per-channel
/// burst counts, for the hierarchy telemetry.
struct HierarchyActivity {
  std::vector<std::uint64_t> rank_activations;     ///< [global rank]
  std::vector<std::uint64_t> rank_columns;         ///< [global rank]
  std::vector<std::uint64_t> channel_bursts;       ///< [channel]
};

/// Enforces the inter-bank constraints of a TimingTable during simulation.
///
/// The bank calls Earliest* to floor a command's issue cycle, then Record*
/// with the cycle it actually issued at.  Commands need not be recorded in
/// globally non-decreasing cycle order (the controller interleaves banks by
/// decision instant, which only approximates issue order); the engine keeps
/// enough history that its floors stay conservative — never earlier than a
/// legal cycle — regardless of recording order, so an audited replay of the
/// resulting stream is violation-free by construction.
///
/// Zero-valued constraints are disabled, and a table whose constraints are
/// all zero (the single-bank-equivalent preset) makes every Earliest* the
/// identity.
class ConstraintEngine {
 public:
  /// `table` must outlive the engine.
  explicit ConstraintEngine(const TimingTable& table);

  // -- ACTIVATE: tRRD_S/tRRD_L plus the rolling four-ACT tFAW window -------
  Cycles EarliestActivate(const BankAddress& addr, Cycles at);
  void RecordActivate(const BankAddress& addr, Cycles at);

  /// EarliestActivate without the stall accounting: a side-effect-free
  /// what-if for the refresh grant scheduler (GrantRefreshes), which probes
  /// whether a REFpb could issue now without perturbing the `dram.hier.*`
  /// stall telemetry of the demand path.
  Cycles PeekActivate(const BankAddress& addr, Cycles at) const;

  // -- Column command: tCCD_S/tCCD_L within the rank -----------------------
  Cycles EarliestColumn(const BankAddress& addr, Cycles at);
  void RecordColumn(const BankAddress& addr, Cycles at);

  // -- Data burst: channel bus occupancy + tRTRS rank turnaround -----------
  /// Earliest cycle the data burst may start on the channel bus.  Only
  /// binding when the table shares the channel bus (per_channel_bus).
  Cycles EarliestBurst(const BankAddress& addr, Cycles at);
  void RecordBurst(const BankAddress& addr, Cycles start, Cycles end);

  const ConstraintStats& stats() const { return stats_; }
  const HierarchyActivity& activity() const { return activity_; }

 private:
  struct RankState {
    /// Most recent ACT cycle per bank group (0 = none yet; disambiguated
    /// by `act_seen`).
    std::vector<Cycles> last_act_by_group;
    std::vector<bool> act_seen;
    /// Recent ACT cycles, kept sorted ascending, pruned to the tFAW
    /// horizon — the rolling four-activate window.
    std::vector<Cycles> recent_acts;
    /// Most recent column-command cycle per bank group.
    std::vector<Cycles> last_col_by_group;
    std::vector<bool> col_seen;
  };
  struct ChannelState {
    Cycles bus_free = 0;          ///< End of the latest recorded burst.
    std::size_t last_rank = 0;    ///< Rank owning that burst.
    bool any_burst = false;
  };

  std::size_t GlobalRank(const BankAddress& addr) const;

  /// The tRRD and tFAW floors of an ACTIVATE at `at` (tfaw_floor >=
  /// trrd_floor).  Shared by EarliestActivate (which attributes the stall)
  /// and PeekActivate (which must stay const).
  std::pair<Cycles, Cycles> ActivateFloors(const BankAddress& addr,
                                           Cycles at) const;

  const TimingTable& table_;
  std::vector<RankState> ranks_;
  std::vector<ChannelState> channels_;
  ConstraintStats stats_;
  HierarchyActivity activity_;
};

}  // namespace vrl::dram
