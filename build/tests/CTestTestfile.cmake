# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_retention[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_power_area[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_property_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_property_model[1]_include.cmake")
include("/root/repo/build/tests/test_property_retention[1]_include.cmake")
include("/root/repo/build/tests/test_property_dram[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_profiler[1]_include.cmake")
include("/root/repo/build/tests/test_engine_edge[1]_include.cmake")
