file(REMOVE_RECURSE
  "CMakeFiles/test_property_retention.dir/property_retention_test.cpp.o"
  "CMakeFiles/test_property_retention.dir/property_retention_test.cpp.o.d"
  "test_property_retention"
  "test_property_retention.pdb"
  "test_property_retention[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
