# Empty compiler generated dependencies file for test_property_retention.
# This may be replaced when dependencies are built.
