# Empty compiler generated dependencies file for test_power_area.
# This may be replaced when dependencies are built.
