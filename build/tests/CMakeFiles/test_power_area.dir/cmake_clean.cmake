file(REMOVE_RECURSE
  "CMakeFiles/test_power_area.dir/power_area_test.cpp.o"
  "CMakeFiles/test_power_area.dir/power_area_test.cpp.o.d"
  "test_power_area"
  "test_power_area.pdb"
  "test_power_area[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
