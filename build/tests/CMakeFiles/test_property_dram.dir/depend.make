# Empty dependencies file for test_property_dram.
# This may be replaced when dependencies are built.
