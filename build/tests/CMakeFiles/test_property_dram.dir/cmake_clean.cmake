file(REMOVE_RECURSE
  "CMakeFiles/test_property_dram.dir/property_dram_test.cpp.o"
  "CMakeFiles/test_property_dram.dir/property_dram_test.cpp.o.d"
  "test_property_dram"
  "test_property_dram.pdb"
  "test_property_dram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
