# Empty dependencies file for test_property_circuit.
# This may be replaced when dependencies are built.
