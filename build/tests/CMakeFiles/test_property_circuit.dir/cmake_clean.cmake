file(REMOVE_RECURSE
  "CMakeFiles/test_property_circuit.dir/property_circuit_test.cpp.o"
  "CMakeFiles/test_property_circuit.dir/property_circuit_test.cpp.o.d"
  "test_property_circuit"
  "test_property_circuit.pdb"
  "test_property_circuit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
