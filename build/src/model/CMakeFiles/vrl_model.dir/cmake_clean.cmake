file(REMOVE_RECURSE
  "CMakeFiles/vrl_model.dir/equalization.cpp.o"
  "CMakeFiles/vrl_model.dir/equalization.cpp.o.d"
  "CMakeFiles/vrl_model.dir/postsensing.cpp.o"
  "CMakeFiles/vrl_model.dir/postsensing.cpp.o.d"
  "CMakeFiles/vrl_model.dir/presensing.cpp.o"
  "CMakeFiles/vrl_model.dir/presensing.cpp.o.d"
  "CMakeFiles/vrl_model.dir/refresh_model.cpp.o"
  "CMakeFiles/vrl_model.dir/refresh_model.cpp.o.d"
  "CMakeFiles/vrl_model.dir/single_cell.cpp.o"
  "CMakeFiles/vrl_model.dir/single_cell.cpp.o.d"
  "libvrl_model.a"
  "libvrl_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrl_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
