file(REMOVE_RECURSE
  "libvrl_model.a"
)
