# Empty dependencies file for vrl_model.
# This may be replaced when dependencies are built.
