
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/equalization.cpp" "src/model/CMakeFiles/vrl_model.dir/equalization.cpp.o" "gcc" "src/model/CMakeFiles/vrl_model.dir/equalization.cpp.o.d"
  "/root/repo/src/model/postsensing.cpp" "src/model/CMakeFiles/vrl_model.dir/postsensing.cpp.o" "gcc" "src/model/CMakeFiles/vrl_model.dir/postsensing.cpp.o.d"
  "/root/repo/src/model/presensing.cpp" "src/model/CMakeFiles/vrl_model.dir/presensing.cpp.o" "gcc" "src/model/CMakeFiles/vrl_model.dir/presensing.cpp.o.d"
  "/root/repo/src/model/refresh_model.cpp" "src/model/CMakeFiles/vrl_model.dir/refresh_model.cpp.o" "gcc" "src/model/CMakeFiles/vrl_model.dir/refresh_model.cpp.o.d"
  "/root/repo/src/model/single_cell.cpp" "src/model/CMakeFiles/vrl_model.dir/single_cell.cpp.o" "gcc" "src/model/CMakeFiles/vrl_model.dir/single_cell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vrl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
