# Empty compiler generated dependencies file for vrl_trace.
# This may be replaced when dependencies are built.
