file(REMOVE_RECURSE
  "libvrl_trace.a"
)
