file(REMOVE_RECURSE
  "CMakeFiles/vrl_trace.dir/address.cpp.o"
  "CMakeFiles/vrl_trace.dir/address.cpp.o.d"
  "CMakeFiles/vrl_trace.dir/io.cpp.o"
  "CMakeFiles/vrl_trace.dir/io.cpp.o.d"
  "CMakeFiles/vrl_trace.dir/stats.cpp.o"
  "CMakeFiles/vrl_trace.dir/stats.cpp.o.d"
  "CMakeFiles/vrl_trace.dir/synthetic.cpp.o"
  "CMakeFiles/vrl_trace.dir/synthetic.cpp.o.d"
  "libvrl_trace.a"
  "libvrl_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrl_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
