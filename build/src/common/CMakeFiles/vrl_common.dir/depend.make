# Empty dependencies file for vrl_common.
# This may be replaced when dependencies are built.
