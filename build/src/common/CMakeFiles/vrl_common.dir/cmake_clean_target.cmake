file(REMOVE_RECURSE
  "libvrl_common.a"
)
