file(REMOVE_RECURSE
  "CMakeFiles/vrl_common.dir/data_pattern.cpp.o"
  "CMakeFiles/vrl_common.dir/data_pattern.cpp.o.d"
  "CMakeFiles/vrl_common.dir/interpolation.cpp.o"
  "CMakeFiles/vrl_common.dir/interpolation.cpp.o.d"
  "CMakeFiles/vrl_common.dir/nodes.cpp.o"
  "CMakeFiles/vrl_common.dir/nodes.cpp.o.d"
  "CMakeFiles/vrl_common.dir/rng.cpp.o"
  "CMakeFiles/vrl_common.dir/rng.cpp.o.d"
  "CMakeFiles/vrl_common.dir/table.cpp.o"
  "CMakeFiles/vrl_common.dir/table.cpp.o.d"
  "CMakeFiles/vrl_common.dir/tridiagonal.cpp.o"
  "CMakeFiles/vrl_common.dir/tridiagonal.cpp.o.d"
  "libvrl_common.a"
  "libvrl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
