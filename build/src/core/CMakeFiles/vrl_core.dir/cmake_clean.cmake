file(REMOVE_RECURSE
  "CMakeFiles/vrl_core.dir/config_io.cpp.o"
  "CMakeFiles/vrl_core.dir/config_io.cpp.o.d"
  "CMakeFiles/vrl_core.dir/experiments.cpp.o"
  "CMakeFiles/vrl_core.dir/experiments.cpp.o.d"
  "CMakeFiles/vrl_core.dir/integrity.cpp.o"
  "CMakeFiles/vrl_core.dir/integrity.cpp.o.d"
  "CMakeFiles/vrl_core.dir/sweep.cpp.o"
  "CMakeFiles/vrl_core.dir/sweep.cpp.o.d"
  "CMakeFiles/vrl_core.dir/vrl_system.cpp.o"
  "CMakeFiles/vrl_core.dir/vrl_system.cpp.o.d"
  "libvrl_core.a"
  "libvrl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
