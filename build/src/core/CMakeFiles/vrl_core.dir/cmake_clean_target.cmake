file(REMOVE_RECURSE
  "libvrl_core.a"
)
