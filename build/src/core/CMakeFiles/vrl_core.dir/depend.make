# Empty dependencies file for vrl_core.
# This may be replaced when dependencies are built.
