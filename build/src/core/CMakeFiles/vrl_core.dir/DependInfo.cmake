
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config_io.cpp" "src/core/CMakeFiles/vrl_core.dir/config_io.cpp.o" "gcc" "src/core/CMakeFiles/vrl_core.dir/config_io.cpp.o.d"
  "/root/repo/src/core/experiments.cpp" "src/core/CMakeFiles/vrl_core.dir/experiments.cpp.o" "gcc" "src/core/CMakeFiles/vrl_core.dir/experiments.cpp.o.d"
  "/root/repo/src/core/integrity.cpp" "src/core/CMakeFiles/vrl_core.dir/integrity.cpp.o" "gcc" "src/core/CMakeFiles/vrl_core.dir/integrity.cpp.o.d"
  "/root/repo/src/core/sweep.cpp" "src/core/CMakeFiles/vrl_core.dir/sweep.cpp.o" "gcc" "src/core/CMakeFiles/vrl_core.dir/sweep.cpp.o.d"
  "/root/repo/src/core/vrl_system.cpp" "src/core/CMakeFiles/vrl_core.dir/vrl_system.cpp.o" "gcc" "src/core/CMakeFiles/vrl_core.dir/vrl_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vrl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/vrl_model.dir/DependInfo.cmake"
  "/root/repo/build/src/retention/CMakeFiles/vrl_retention.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/vrl_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vrl_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/vrl_power.dir/DependInfo.cmake"
  "/root/repo/build/src/area/CMakeFiles/vrl_area.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
