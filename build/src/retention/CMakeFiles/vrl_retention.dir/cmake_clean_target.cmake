file(REMOVE_RECURSE
  "libvrl_retention.a"
)
