file(REMOVE_RECURSE
  "CMakeFiles/vrl_retention.dir/distribution.cpp.o"
  "CMakeFiles/vrl_retention.dir/distribution.cpp.o.d"
  "CMakeFiles/vrl_retention.dir/leakage.cpp.o"
  "CMakeFiles/vrl_retention.dir/leakage.cpp.o.d"
  "CMakeFiles/vrl_retention.dir/mprsf.cpp.o"
  "CMakeFiles/vrl_retention.dir/mprsf.cpp.o.d"
  "CMakeFiles/vrl_retention.dir/profile.cpp.o"
  "CMakeFiles/vrl_retention.dir/profile.cpp.o.d"
  "CMakeFiles/vrl_retention.dir/profiler.cpp.o"
  "CMakeFiles/vrl_retention.dir/profiler.cpp.o.d"
  "CMakeFiles/vrl_retention.dir/temperature.cpp.o"
  "CMakeFiles/vrl_retention.dir/temperature.cpp.o.d"
  "CMakeFiles/vrl_retention.dir/vrt.cpp.o"
  "CMakeFiles/vrl_retention.dir/vrt.cpp.o.d"
  "libvrl_retention.a"
  "libvrl_retention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrl_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
