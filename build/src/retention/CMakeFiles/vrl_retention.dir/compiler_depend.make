# Empty compiler generated dependencies file for vrl_retention.
# This may be replaced when dependencies are built.
