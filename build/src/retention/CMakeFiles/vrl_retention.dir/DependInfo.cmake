
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/retention/distribution.cpp" "src/retention/CMakeFiles/vrl_retention.dir/distribution.cpp.o" "gcc" "src/retention/CMakeFiles/vrl_retention.dir/distribution.cpp.o.d"
  "/root/repo/src/retention/leakage.cpp" "src/retention/CMakeFiles/vrl_retention.dir/leakage.cpp.o" "gcc" "src/retention/CMakeFiles/vrl_retention.dir/leakage.cpp.o.d"
  "/root/repo/src/retention/mprsf.cpp" "src/retention/CMakeFiles/vrl_retention.dir/mprsf.cpp.o" "gcc" "src/retention/CMakeFiles/vrl_retention.dir/mprsf.cpp.o.d"
  "/root/repo/src/retention/profile.cpp" "src/retention/CMakeFiles/vrl_retention.dir/profile.cpp.o" "gcc" "src/retention/CMakeFiles/vrl_retention.dir/profile.cpp.o.d"
  "/root/repo/src/retention/profiler.cpp" "src/retention/CMakeFiles/vrl_retention.dir/profiler.cpp.o" "gcc" "src/retention/CMakeFiles/vrl_retention.dir/profiler.cpp.o.d"
  "/root/repo/src/retention/temperature.cpp" "src/retention/CMakeFiles/vrl_retention.dir/temperature.cpp.o" "gcc" "src/retention/CMakeFiles/vrl_retention.dir/temperature.cpp.o.d"
  "/root/repo/src/retention/vrt.cpp" "src/retention/CMakeFiles/vrl_retention.dir/vrt.cpp.o" "gcc" "src/retention/CMakeFiles/vrl_retention.dir/vrt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vrl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/vrl_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
