file(REMOVE_RECURSE
  "CMakeFiles/vrl_circuit.dir/banded.cpp.o"
  "CMakeFiles/vrl_circuit.dir/banded.cpp.o.d"
  "CMakeFiles/vrl_circuit.dir/dram_circuits.cpp.o"
  "CMakeFiles/vrl_circuit.dir/dram_circuits.cpp.o.d"
  "CMakeFiles/vrl_circuit.dir/linear.cpp.o"
  "CMakeFiles/vrl_circuit.dir/linear.cpp.o.d"
  "CMakeFiles/vrl_circuit.dir/mosfet.cpp.o"
  "CMakeFiles/vrl_circuit.dir/mosfet.cpp.o.d"
  "CMakeFiles/vrl_circuit.dir/netlist.cpp.o"
  "CMakeFiles/vrl_circuit.dir/netlist.cpp.o.d"
  "CMakeFiles/vrl_circuit.dir/spice_export.cpp.o"
  "CMakeFiles/vrl_circuit.dir/spice_export.cpp.o.d"
  "CMakeFiles/vrl_circuit.dir/transient.cpp.o"
  "CMakeFiles/vrl_circuit.dir/transient.cpp.o.d"
  "CMakeFiles/vrl_circuit.dir/waveform.cpp.o"
  "CMakeFiles/vrl_circuit.dir/waveform.cpp.o.d"
  "libvrl_circuit.a"
  "libvrl_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrl_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
