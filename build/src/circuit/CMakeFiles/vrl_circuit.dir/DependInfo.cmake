
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/banded.cpp" "src/circuit/CMakeFiles/vrl_circuit.dir/banded.cpp.o" "gcc" "src/circuit/CMakeFiles/vrl_circuit.dir/banded.cpp.o.d"
  "/root/repo/src/circuit/dram_circuits.cpp" "src/circuit/CMakeFiles/vrl_circuit.dir/dram_circuits.cpp.o" "gcc" "src/circuit/CMakeFiles/vrl_circuit.dir/dram_circuits.cpp.o.d"
  "/root/repo/src/circuit/linear.cpp" "src/circuit/CMakeFiles/vrl_circuit.dir/linear.cpp.o" "gcc" "src/circuit/CMakeFiles/vrl_circuit.dir/linear.cpp.o.d"
  "/root/repo/src/circuit/mosfet.cpp" "src/circuit/CMakeFiles/vrl_circuit.dir/mosfet.cpp.o" "gcc" "src/circuit/CMakeFiles/vrl_circuit.dir/mosfet.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/circuit/CMakeFiles/vrl_circuit.dir/netlist.cpp.o" "gcc" "src/circuit/CMakeFiles/vrl_circuit.dir/netlist.cpp.o.d"
  "/root/repo/src/circuit/spice_export.cpp" "src/circuit/CMakeFiles/vrl_circuit.dir/spice_export.cpp.o" "gcc" "src/circuit/CMakeFiles/vrl_circuit.dir/spice_export.cpp.o.d"
  "/root/repo/src/circuit/transient.cpp" "src/circuit/CMakeFiles/vrl_circuit.dir/transient.cpp.o" "gcc" "src/circuit/CMakeFiles/vrl_circuit.dir/transient.cpp.o.d"
  "/root/repo/src/circuit/waveform.cpp" "src/circuit/CMakeFiles/vrl_circuit.dir/waveform.cpp.o" "gcc" "src/circuit/CMakeFiles/vrl_circuit.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vrl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
