file(REMOVE_RECURSE
  "libvrl_circuit.a"
)
