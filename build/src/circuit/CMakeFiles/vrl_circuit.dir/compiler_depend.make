# Empty compiler generated dependencies file for vrl_circuit.
# This may be replaced when dependencies are built.
