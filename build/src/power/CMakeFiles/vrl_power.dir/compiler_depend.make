# Empty compiler generated dependencies file for vrl_power.
# This may be replaced when dependencies are built.
