file(REMOVE_RECURSE
  "libvrl_power.a"
)
