file(REMOVE_RECURSE
  "CMakeFiles/vrl_power.dir/idd.cpp.o"
  "CMakeFiles/vrl_power.dir/idd.cpp.o.d"
  "CMakeFiles/vrl_power.dir/power_model.cpp.o"
  "CMakeFiles/vrl_power.dir/power_model.cpp.o.d"
  "libvrl_power.a"
  "libvrl_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrl_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
