file(REMOVE_RECURSE
  "CMakeFiles/vrl_dram.dir/bank.cpp.o"
  "CMakeFiles/vrl_dram.dir/bank.cpp.o.d"
  "CMakeFiles/vrl_dram.dir/controller.cpp.o"
  "CMakeFiles/vrl_dram.dir/controller.cpp.o.d"
  "CMakeFiles/vrl_dram.dir/refresh_policy.cpp.o"
  "CMakeFiles/vrl_dram.dir/refresh_policy.cpp.o.d"
  "CMakeFiles/vrl_dram.dir/scheduler.cpp.o"
  "CMakeFiles/vrl_dram.dir/scheduler.cpp.o.d"
  "libvrl_dram.a"
  "libvrl_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrl_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
