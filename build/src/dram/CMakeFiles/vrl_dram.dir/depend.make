# Empty dependencies file for vrl_dram.
# This may be replaced when dependencies are built.
