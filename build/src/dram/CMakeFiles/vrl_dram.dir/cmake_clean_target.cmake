file(REMOVE_RECURSE
  "libvrl_dram.a"
)
