
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/bank.cpp" "src/dram/CMakeFiles/vrl_dram.dir/bank.cpp.o" "gcc" "src/dram/CMakeFiles/vrl_dram.dir/bank.cpp.o.d"
  "/root/repo/src/dram/controller.cpp" "src/dram/CMakeFiles/vrl_dram.dir/controller.cpp.o" "gcc" "src/dram/CMakeFiles/vrl_dram.dir/controller.cpp.o.d"
  "/root/repo/src/dram/refresh_policy.cpp" "src/dram/CMakeFiles/vrl_dram.dir/refresh_policy.cpp.o" "gcc" "src/dram/CMakeFiles/vrl_dram.dir/refresh_policy.cpp.o.d"
  "/root/repo/src/dram/scheduler.cpp" "src/dram/CMakeFiles/vrl_dram.dir/scheduler.cpp.o" "gcc" "src/dram/CMakeFiles/vrl_dram.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vrl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/retention/CMakeFiles/vrl_retention.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/vrl_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
