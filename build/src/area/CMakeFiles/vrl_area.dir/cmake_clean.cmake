file(REMOVE_RECURSE
  "CMakeFiles/vrl_area.dir/area_model.cpp.o"
  "CMakeFiles/vrl_area.dir/area_model.cpp.o.d"
  "libvrl_area.a"
  "libvrl_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrl_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
