# Empty dependencies file for vrl_area.
# This may be replaced when dependencies are built.
