file(REMOVE_RECURSE
  "libvrl_area.a"
)
