file(REMOVE_RECURSE
  "CMakeFiles/latency_impact.dir/latency_impact.cpp.o"
  "CMakeFiles/latency_impact.dir/latency_impact.cpp.o.d"
  "latency_impact"
  "latency_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
