# Empty dependencies file for latency_impact.
# This may be replaced when dependencies are built.
