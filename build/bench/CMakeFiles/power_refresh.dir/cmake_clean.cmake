file(REMOVE_RECURSE
  "CMakeFiles/power_refresh.dir/power_refresh.cpp.o"
  "CMakeFiles/power_refresh.dir/power_refresh.cpp.o.d"
  "power_refresh"
  "power_refresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
