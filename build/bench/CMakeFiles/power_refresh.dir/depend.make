# Empty dependencies file for power_refresh.
# This may be replaced when dependencies are built.
