# Empty dependencies file for fig1b_partial_refresh.
# This may be replaced when dependencies are built.
