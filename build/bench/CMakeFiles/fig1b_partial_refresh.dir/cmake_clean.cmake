file(REMOVE_RECURSE
  "CMakeFiles/fig1b_partial_refresh.dir/fig1b_partial_refresh.cpp.o"
  "CMakeFiles/fig1b_partial_refresh.dir/fig1b_partial_refresh.cpp.o.d"
  "fig1b_partial_refresh"
  "fig1b_partial_refresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1b_partial_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
