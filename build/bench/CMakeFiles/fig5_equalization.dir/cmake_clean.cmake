file(REMOVE_RECURSE
  "CMakeFiles/fig5_equalization.dir/fig5_equalization.cpp.o"
  "CMakeFiles/fig5_equalization.dir/fig5_equalization.cpp.o.d"
  "fig5_equalization"
  "fig5_equalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_equalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
