# Empty dependencies file for fig5_equalization.
# This may be replaced when dependencies are built.
