# Empty compiler generated dependencies file for ablation_nbits.
# This may be replaced when dependencies are built.
