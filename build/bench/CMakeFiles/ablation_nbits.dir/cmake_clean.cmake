file(REMOVE_RECURSE
  "CMakeFiles/ablation_nbits.dir/ablation_nbits.cpp.o"
  "CMakeFiles/ablation_nbits.dir/ablation_nbits.cpp.o.d"
  "ablation_nbits"
  "ablation_nbits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nbits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
