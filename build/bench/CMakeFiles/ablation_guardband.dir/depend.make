# Empty dependencies file for ablation_guardband.
# This may be replaced when dependencies are built.
