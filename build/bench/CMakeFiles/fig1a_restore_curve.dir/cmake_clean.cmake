file(REMOVE_RECURSE
  "CMakeFiles/fig1a_restore_curve.dir/fig1a_restore_curve.cpp.o"
  "CMakeFiles/fig1a_restore_curve.dir/fig1a_restore_curve.cpp.o.d"
  "fig1a_restore_curve"
  "fig1a_restore_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1a_restore_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
