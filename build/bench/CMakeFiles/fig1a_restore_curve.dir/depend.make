# Empty dependencies file for fig1a_restore_curve.
# This may be replaced when dependencies are built.
