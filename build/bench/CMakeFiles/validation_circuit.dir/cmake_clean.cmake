file(REMOVE_RECURSE
  "CMakeFiles/validation_circuit.dir/validation_circuit.cpp.o"
  "CMakeFiles/validation_circuit.dir/validation_circuit.cpp.o.d"
  "validation_circuit"
  "validation_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
