# Empty dependencies file for validation_circuit.
# This may be replaced when dependencies are built.
