file(REMOVE_RECURSE
  "CMakeFiles/ablation_technology.dir/ablation_technology.cpp.o"
  "CMakeFiles/ablation_technology.dir/ablation_technology.cpp.o.d"
  "ablation_technology"
  "ablation_technology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_technology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
