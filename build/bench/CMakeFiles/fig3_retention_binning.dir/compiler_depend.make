# Empty compiler generated dependencies file for fig3_retention_binning.
# This may be replaced when dependencies are built.
