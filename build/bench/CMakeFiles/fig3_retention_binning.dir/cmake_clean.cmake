file(REMOVE_RECURSE
  "CMakeFiles/fig3_retention_binning.dir/fig3_retention_binning.cpp.o"
  "CMakeFiles/fig3_retention_binning.dir/fig3_retention_binning.cpp.o.d"
  "fig3_retention_binning"
  "fig3_retention_binning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_retention_binning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
