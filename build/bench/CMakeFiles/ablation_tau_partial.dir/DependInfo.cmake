
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_tau_partial.cpp" "bench/CMakeFiles/ablation_tau_partial.dir/ablation_tau_partial.cpp.o" "gcc" "bench/CMakeFiles/ablation_tau_partial.dir/ablation_tau_partial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vrl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vrl_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/vrl_power.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/vrl_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/retention/CMakeFiles/vrl_retention.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/vrl_model.dir/DependInfo.cmake"
  "/root/repo/build/src/area/CMakeFiles/vrl_area.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vrl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
