# Empty dependencies file for ablation_tau_partial.
# This may be replaced when dependencies are built.
