file(REMOVE_RECURSE
  "CMakeFiles/ablation_tau_partial.dir/ablation_tau_partial.cpp.o"
  "CMakeFiles/ablation_tau_partial.dir/ablation_tau_partial.cpp.o.d"
  "ablation_tau_partial"
  "ablation_tau_partial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tau_partial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
