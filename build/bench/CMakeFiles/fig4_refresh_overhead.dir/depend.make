# Empty dependencies file for fig4_refresh_overhead.
# This may be replaced when dependencies are built.
