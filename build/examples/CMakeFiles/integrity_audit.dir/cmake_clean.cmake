file(REMOVE_RECURSE
  "CMakeFiles/integrity_audit.dir/integrity_audit.cpp.o"
  "CMakeFiles/integrity_audit.dir/integrity_audit.cpp.o.d"
  "integrity_audit"
  "integrity_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integrity_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
