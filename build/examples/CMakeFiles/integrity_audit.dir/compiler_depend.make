# Empty compiler generated dependencies file for integrity_audit.
# This may be replaced when dependencies are built.
