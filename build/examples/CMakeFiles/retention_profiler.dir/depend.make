# Empty dependencies file for retention_profiler.
# This may be replaced when dependencies are built.
