file(REMOVE_RECURSE
  "CMakeFiles/retention_profiler.dir/retention_profiler.cpp.o"
  "CMakeFiles/retention_profiler.dir/retention_profiler.cpp.o.d"
  "retention_profiler"
  "retention_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retention_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
