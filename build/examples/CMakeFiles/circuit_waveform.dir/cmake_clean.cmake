file(REMOVE_RECURSE
  "CMakeFiles/circuit_waveform.dir/circuit_waveform.cpp.o"
  "CMakeFiles/circuit_waveform.dir/circuit_waveform.cpp.o.d"
  "circuit_waveform"
  "circuit_waveform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_waveform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
