# Empty dependencies file for circuit_waveform.
# This may be replaced when dependencies are built.
