#!/usr/bin/env python3
"""Validate a timing audit log produced by timing_conformance --audit-out.

    python3 scripts/check_timing_audit.py audit.log [--expect-preset NAME] \
        [--allow-violations]

The file holds one or more sections, each the byte-deterministic rendering
of one dram::AuditReport (src/dram/auditor.hpp):

    # vrl timing audit v1
    # preset=<label> commands=<n> violations=<k>
    violation at=<cycle> rule=<rule> ch=<c> rk=<r> bg=<g> bk=<b> <detail>
    ...
    # end

Checks (stdlib only, no third-party deps):
  * every section opens with the v1 header, carries a preset/commands/
    violations line, and closes with `# end`;
  * each section's violation-line count matches its declared count, lines
    parse, and cycles are non-decreasing within a section;
  * each section audited a non-zero number of commands (an empty sweep
    would pass vacuously);
  * without --allow-violations, every section declares zero violations —
    the conformance contract CI enforces.

Exit code 0 on a valid (and clean) log, 1 with a diagnostic otherwise.
"""

import argparse
import re
import sys

HEADER = "# vrl timing audit v1"
META_RE = re.compile(r"^# preset=(\S+) commands=(\d+) violations=(\d+)$")
VIOLATION_RE = re.compile(
    r"^violation at=(\d+) rule=(\S+) ch=(\d+) rk=(\d+) bg=(\d+) bk=(\d+) (.+)$"
)


def fail(message):
    print(f"check_timing_audit: FAIL: {message}", file=sys.stderr)
    return 1


def parse_sections(path, lines):
    """Yields (preset, commands, declared, violations) or raises ValueError."""
    i = 0
    while i < len(lines):
        if lines[i] != HEADER:
            raise ValueError(f"line {i + 1}: expected {HEADER!r}, got {lines[i]!r}")
        if i + 1 >= len(lines):
            raise ValueError(f"line {i + 2}: missing preset line")
        meta = META_RE.match(lines[i + 1])
        if not meta:
            raise ValueError(f"line {i + 2}: bad preset line {lines[i + 1]!r}")
        preset, commands, declared = meta.group(1), int(meta.group(2)), int(meta.group(3))
        i += 2
        violations = []
        while i < len(lines) and lines[i] != "# end":
            match = VIOLATION_RE.match(lines[i])
            if not match:
                raise ValueError(f"line {i + 1}: bad violation line {lines[i]!r}")
            violations.append((int(match.group(1)), match.group(2)))
            i += 1
        if i >= len(lines):
            raise ValueError(f"{path}: section {preset!r} missing '# end'")
        i += 1  # consume "# end"
        yield preset, commands, declared, violations


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("audit", help="audit log (--audit-out output)")
    parser.add_argument(
        "--expect-preset",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless a section for this preset exists; repeatable",
    )
    parser.add_argument(
        "--allow-violations",
        action="store_true",
        help="only validate the format; do not fail on declared violations",
    )
    args = parser.parse_args()

    with open(args.audit) as f:
        lines = f.read().splitlines()
    if not lines:
        return fail(f"{args.audit}: empty file")

    seen = {}
    try:
        for preset, commands, declared, violations in parse_sections(
            args.audit, lines
        ):
            if preset in seen:
                return fail(f"{args.audit}: duplicate section for {preset!r}")
            if len(violations) != declared:
                return fail(
                    f"{args.audit}: section {preset!r} declares {declared} "
                    f"violations but lists {len(violations)}"
                )
            if commands == 0:
                return fail(
                    f"{args.audit}: section {preset!r} audited zero commands"
                )
            cycles = [at for at, _ in violations]
            if cycles != sorted(cycles):
                return fail(
                    f"{args.audit}: section {preset!r} violations not "
                    "cycle-ordered"
                )
            seen[preset] = (commands, declared)
    except ValueError as error:
        return fail(f"{args.audit}: {error}")

    for preset in args.expect_preset:
        if preset not in seen:
            have = ", ".join(sorted(seen)) or "none"
            return fail(f"{args.audit}: no section for {preset!r} (have: {have})")

    dirty = {p: d for p, (_, d) in seen.items() if d}
    if dirty and not args.allow_violations:
        detail = ", ".join(f"{p}:{d}" for p, d in sorted(dirty.items()))
        return fail(f"{args.audit}: timing violations {{{detail}}}")

    summary = "; ".join(
        f"{p}: {c} commands, {d} violations" for p, (c, d) in sorted(seen.items())
    )
    print(f"check_timing_audit: OK: {args.audit}: {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
