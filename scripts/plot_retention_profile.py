#!/usr/bin/env python3
"""Plot the per-row retention profile CSV from examples/retention_profiler.

Usage:
    ./build/examples/retention_profiler            # writes /tmp/vrl_profile.csv
    python3 scripts/plot_retention_profile.py /tmp/vrl_profile.csv [out.png]

Left panel: the row-retention histogram over the paper's Fig. 3a window.
Right panel: MPRSF histogram (the table VRL-DRAM programs per row).
"""

import csv
import sys
from collections import Counter


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    path = sys.argv[1]
    out = sys.argv[2] if len(sys.argv) > 2 else path.rsplit(".", 1)[0] + ".png"

    retention_ms = []
    mprsf = []
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            retention_ms.append(float(row["retention_ms"]))
            mprsf.append(int(row["mprsf"]))

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        counts = Counter(mprsf)
        print(f"{len(retention_ms)} rows; min retention "
              f"{min(retention_ms):.1f} ms; MPRSF histogram: {dict(counts)}")
        return 0

    fig, (left, right) = plt.subplots(1, 2, figsize=(10, 4))
    left.hist([t for t in retention_ms if t <= 4681], bins=21)
    left.set_xlabel("row retention (ms)")
    left.set_ylabel("rows")
    left.set_title("retention distribution (Fig. 3a window)")

    counts = Counter(mprsf)
    keys = sorted(counts)
    right.bar([str(k) for k in keys], [counts[k] for k in keys])
    right.set_xlabel("MPRSF")
    right.set_ylabel("rows")
    right.set_title("per-row MPRSF")

    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
