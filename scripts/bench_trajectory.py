#!/usr/bin/env python3
"""Aggregate all committed BENCH_pr*.json baselines into one trajectory.

    python3 scripts/bench_trajectory.py [BENCH_pr*.json ...]
        [--out trajectory.json] [--threshold T]

Each PR that touches the hot path records a bench baseline
(scripts/bench_baseline.py), so the repo accumulates BENCH_pr4.json,
BENCH_pr8.json, ... — a time series of every machine-independent ratio.
This script lines them up (sorted by PR number), prints the per-ratio
series, and gates two things:

  * **Trajectory regression**: for every ratio present in two or more
    baselines, the latest value must not exceed the earliest by more
    than ``--threshold`` (ratio_regressed from bench_baseline.py).
    Point-to-point wobble between recordings is expected — different
    machines, different loads — but the first->last drift is the cost
    the instrumentation has actually accumulated over the PR sequence.
  * **Overhead budget lines**: documented hard ceilings, checked on the
    latest baseline that carries the ratio —

        telemetry_overhead_loaded   <= 1.10  (docs/TELEMETRY.md)
        tracing_increment_loaded    <= 1.10  (docs/TRACING.md)
        profiler_overhead_loaded    <= 1.02  (docs/PROFILING.md)

Absolute cpu_time series are printed for context but never gated: the
baselines come from different hosts.  --out writes the aggregated series
as JSON (the CI artifact).  Exit 0 when every gate passes, 1 otherwise,
2 on bad input.
"""

import argparse
import glob
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_baseline import ratio_regressed  # noqa: E402

# (ratio key, ceiling) — the budget lines the docs quote.  Checked on the
# newest baseline that records the ratio; older baselines predate the
# subsystem and legitimately lack it.
BUDGETS = [
    ("telemetry_overhead_loaded", 1.10),
    ("tracing_increment_loaded", 1.10),
    ("profiler_overhead_loaded", 1.02),
]


def pr_number(path):
    match = re.search(r"BENCH_pr(\d+)\.json$", os.path.basename(path))
    if match is None:
        raise SystemExit(
            f"bench_trajectory: {path}: expected a BENCH_pr<N>.json name"
        )
    return int(match.group(1))


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"bench_trajectory: {path}: {error}")
    if doc.get("schema") != "vrl-bench-baseline-v1":
        raise SystemExit(
            f"bench_trajectory: {path}: schema {doc.get('schema')!r}, "
            "want 'vrl-bench-baseline-v1'"
        )
    return doc


def build_series(paths):
    """{ratio_key: [(pr, value), ...]} over baselines sorted by PR number."""
    series = {}
    absolute = {}
    for path in paths:
        pr = pr_number(path)
        doc = load(path)
        for key, value in doc.get("ratios", {}).items():
            series.setdefault(key, []).append((pr, value))
        for name, bench in doc.get("benchmarks", {}).items():
            absolute.setdefault(name, []).append(
                (pr, bench["cpu_time"], bench["time_unit"])
            )
    return series, absolute


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "baselines",
        nargs="*",
        help="BENCH_pr<N>.json files (default: glob the repo root)",
    )
    parser.add_argument("--out", help="write the aggregated series as JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="allowed first->last relative growth per ratio (default 0.15: "
        "looser than the per-PR 10%% gate because endpoints span hosts)",
    )
    args = parser.parse_args()

    paths = args.baselines
    if not paths:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        paths = glob.glob(os.path.join(root, "BENCH_pr*.json"))
    if len(paths) < 2:
        raise SystemExit(
            f"bench_trajectory: need at least two baselines, got {len(paths)}"
        )
    paths = sorted(paths, key=pr_number)
    prs = [pr_number(p) for p in paths]
    print(f"bench_trajectory: {len(paths)} baselines: pr{', pr'.join(map(str, prs))}")

    series, absolute = build_series(paths)
    failures = []

    for key in sorted(series):
        points = series[key]
        values = " ".join(f"pr{pr}={value:.4f}" for pr, value in points)
        print(f"bench_trajectory: ratio {key}: {values}")
        if len(points) < 2:
            continue
        (first_pr, first), (last_pr, last) = points[0], points[-1]
        if ratio_regressed(last, first, args.threshold):
            failures.append(
                f"ratio {key}: pr{first_pr} {first:.4f} -> pr{last_pr} "
                f"{last:.4f} (> +{args.threshold:.0%} over the sequence)"
            )

    for key, ceiling in BUDGETS:
        points = series.get(key)
        if not points:
            continue
        last_pr, last = points[-1]
        if last > ceiling:
            failures.append(
                f"budget {key}: pr{last_pr} {last:.4f} > ceiling {ceiling}"
            )
        else:
            print(
                f"bench_trajectory: budget {key}: pr{last_pr} {last:.4f} "
                f"<= {ceiling} OK"
            )

    if args.out:
        doc = {
            "schema": "vrl-bench-trajectory-v1",
            "source": "scripts/bench_trajectory.py",
            "baselines": [os.path.basename(p) for p in paths],
            "ratios": {
                key: [{"pr": pr, "value": value} for pr, value in points]
                for key, points in sorted(series.items())
            },
            "absolute_cpu_time": {
                name: [
                    {"pr": pr, "cpu_time": t, "time_unit": unit}
                    for pr, t, unit in points
                ]
                for name, points in sorted(absolute.items())
            },
        }
        with open(args.out, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"bench_trajectory: wrote {args.out}")

    for failure in failures:
        print(f"bench_trajectory: REGRESSION: {failure}", file=sys.stderr)
    verdict = "FAIL" if failures else "OK"
    print(
        f"bench_trajectory: {verdict}: {len(series)} ratios tracked, "
        f"{len(failures)} regressed"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
