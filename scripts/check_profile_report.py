#!/usr/bin/env python3
"""Validate a vrl.profile.v1 attribution export (--profile-out foo.json).

    python3 scripts/check_profile_report.py profile.json [--expect-phase NAME]
    python3 scripts/check_profile_report.py --from-url http://127.0.0.1:PORT

Checks the invariants the profiler (src/prof/profiler.hpp) promises:

  * schema is ``vrl.profile.v1`` with integer ``frames``/``drops`` >= 0
  * the node list is a well-formed forest: every ``parent`` is -1 or a
    smaller ``id`` (parents are created before children), ``depth`` is
    parent depth + 1, ``path`` is the ';'-joined root chain
  * per node: ``calls`` >= 0 (0 only for a frame still open when the
    snapshot was taken) and ``exclusive_s <= inclusive_s`` (+eps)
  * ``frames == sum(node.calls)`` — every counted frame is attributed
    (drops are accounted separately, never silently lost)

Deliberately NOT checked: parent inclusive >= sum(child inclusive).  Hot
phases are sampled 1-in-64 and scaled (prof::PhaseAccumulator), so a
child's estimate can legitimately overshoot its parent's measured time.

--expect-phase NAME (repeatable) requires a node with that name, so CI
can assert the controller/campaign wiring actually produced frames.
--from-url scrapes GET /profile from a live monitor server first
(stdlib urllib; docs/PROFILING.md).  Exit 0 on success, 1 on violation,
2 on bad input.
"""

import argparse
import json
import sys


EPS = 1e-9


def fail(message):
    print(f"check_profile_report: FAIL: {message}", file=sys.stderr)
    return 1


def check(doc, expect_phases):
    if doc.get("schema") != "vrl.profile.v1":
        return fail(f"schema is {doc.get('schema')!r}, want 'vrl.profile.v1'")
    frames = doc.get("frames")
    drops = doc.get("drops")
    if not isinstance(frames, int) or frames < 0:
        return fail(f"frames is {frames!r}, want a non-negative integer")
    if not isinstance(drops, int) or drops < 0:
        return fail(f"drops is {drops!r}, want a non-negative integer")
    nodes = doc.get("nodes")
    if not isinstance(nodes, list):
        return fail("nodes is not a list")

    total_calls = 0
    names = set()
    for index, node in enumerate(nodes):
        where = f"node {index}"
        if node.get("id") != index:
            return fail(f"{where}: id {node.get('id')!r} != position {index}")
        parent = node.get("parent")
        if not isinstance(parent, int) or parent >= index or parent < -1:
            return fail(
                f"{where}: parent {parent!r} must be -1 or a smaller id "
                "(parents precede children)"
            )
        depth = node.get("depth")
        want_depth = 0 if parent < 0 else nodes[parent]["depth"] + 1
        if depth != want_depth:
            return fail(f"{where}: depth {depth!r}, want {want_depth}")
        name = node.get("name")
        if not name:
            return fail(f"{where}: empty name")
        want_path = name if parent < 0 else f"{nodes[parent]['path']};{name}"
        if node.get("path") != want_path:
            return fail(f"{where}: path {node.get('path')!r}, want {want_path!r}")
        # calls == 0 is legal: a mid-run scrape can see a node whose frame
        # is still open (opened at BeginPhase, counted at EndPhase).
        calls = node.get("calls")
        if not isinstance(calls, int) or calls < 0:
            return fail(f"{where} ({name}): calls {calls!r}, want >= 0")
        units = node.get("units")
        if not isinstance(units, int) or units < 0:
            return fail(f"{where} ({name}): units {units!r}, want >= 0")
        inclusive = node.get("inclusive_s")
        exclusive = node.get("exclusive_s")
        if not isinstance(inclusive, (int, float)) or inclusive < 0:
            return fail(f"{where} ({name}): inclusive_s {inclusive!r}")
        if not isinstance(exclusive, (int, float)) or exclusive < 0:
            return fail(f"{where} ({name}): exclusive_s {exclusive!r}")
        if exclusive > inclusive + EPS:
            return fail(
                f"{where} ({name}): exclusive_s {exclusive} > "
                f"inclusive_s {inclusive}"
            )
        total_calls += calls
        names.add(name)

    if frames != total_calls:
        return fail(
            f"frames {frames} != sum of node calls {total_calls} "
            "(a frame was lost without landing in drops)"
        )
    for phase in expect_phases:
        if phase not in names:
            return fail(f"expected phase {phase!r} not present in the tree")

    print(
        f"check_profile_report: OK: {len(nodes)} nodes, {frames} frames, "
        f"{drops} dropped"
    )
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", nargs="?", help="profile JSON (--profile-out)")
    parser.add_argument(
        "--from-url",
        metavar="BASE",
        help="scrape GET BASE/profile from a live monitor server instead",
    )
    parser.add_argument(
        "--expect-phase",
        action="append",
        default=[],
        metavar="NAME",
        help="require a node with this name (repeatable)",
    )
    args = parser.parse_args()

    if args.from_url:
        import urllib.request

        url = args.from_url.rstrip("/") + "/profile"
        try:
            with urllib.request.urlopen(url, timeout=10) as response:
                body = response.read().decode()
        except OSError as error:
            raise SystemExit(f"check_profile_report: {url}: {error}")
    elif args.report:
        try:
            with open(args.report) as f:
                body = f.read()
        except OSError as error:
            raise SystemExit(f"check_profile_report: {error}")
    else:
        parser.error("need a report file or --from-url")

    try:
        doc = json.loads(body)
    except json.JSONDecodeError as error:
        raise SystemExit(f"check_profile_report: not valid JSON: {error}")
    return check(doc, args.expect_phase)


if __name__ == "__main__":
    sys.exit(main())
