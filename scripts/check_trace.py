#!/usr/bin/env python3
"""Validate a trace produced by --trace-out (docs/TRACING.md).

Chrome trace_event JSON (the default export):

    python3 scripts/check_trace.py trace.json [--require-lineage KIND] \
        [--expect-process NAME]

JSONL export (paths ending in .jsonl):

    python3 scripts/check_trace.py trace.jsonl

Checks (stdlib only, no third-party deps):
  * the file parses, and every event carries the keys its phase requires;
  * span (`X`) events have non-negative durations and unique ids, and
    every parent id is either 0 or a known span id (parents of retained
    spans can only be missing when the exporter reported span drops);
  * lineage instant (`i`) events sit on the synthetic lineage process and
    carry row/cause/detail/value args;
  * metadata (`M`) names every process and track that appears;
  * JSONL traces end with span_summary/lineage_summary lines whose
    recorded = retained + dropped accounting balances.

Exit code 0 on a valid trace, 1 with a diagnostic otherwise.
"""

import argparse
import json
import sys

SPAN_KEYS = {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}
INSTANT_KEYS = {"name", "cat", "ph", "s", "ts", "pid", "tid", "args"}


def fail(message):
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    return 1


def check_chrome(path, require_lineage, expect_processes):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail(f"{path}: no traceEvents array")

    processes = {}  # pid -> name
    named_tracks = set()  # (pid, tid)
    span_ids = set()
    parents = []  # (event name, parent id)
    used_tracks = set()
    lineage_kinds = {}
    lineage_pids = set()
    dropped_spans = False

    for i, event in enumerate(events):
        ph = event.get("ph")
        where = f"{path}: event {i}"
        if ph == "M":
            name = event.get("name")
            if name == "process_name":
                processes[event["pid"]] = event["args"]["name"]
            elif name == "thread_name":
                named_tracks.add((event["pid"], event["tid"]))
            else:
                return fail(f"{where}: unexpected metadata {name!r}")
        elif ph == "X":
            missing = SPAN_KEYS - event.keys()
            if missing:
                return fail(f"{where}: span missing keys {sorted(missing)}")
            if event["dur"] < 0:
                return fail(f"{where}: negative duration {event['dur']}")
            span_id = event["args"]["id"]
            if span_id in span_ids:
                return fail(f"{where}: duplicate span id {span_id}")
            span_ids.add(span_id)
            parents.append((event["name"], event["args"]["parent"]))
            used_tracks.add((event["pid"], event["tid"]))
        elif ph == "i":
            missing = INSTANT_KEYS - event.keys()
            if missing:
                return fail(f"{where}: instant missing keys {sorted(missing)}")
            args_missing = {"row", "cause", "detail", "value"} - event["args"].keys()
            if args_missing:
                return fail(f"{where}: lineage args missing {sorted(args_missing)}")
            lineage_kinds[event["name"]] = lineage_kinds.get(event["name"], 0) + 1
            lineage_pids.add(event["pid"])
        else:
            return fail(f"{where}: unexpected phase {ph!r}")

    if not span_ids:
        return fail(f"{path}: no span events")
    for pid, tid in used_tracks:
        if pid not in processes:
            return fail(f"{path}: span on unnamed process pid={pid}")
        if (pid, tid) not in named_tracks:
            return fail(f"{path}: span on unnamed track pid={pid} tid={tid}")
    if len(lineage_pids) > 1:
        return fail(f"{path}: lineage spread over processes {sorted(lineage_pids)}")
    if lineage_pids and processes.get(next(iter(lineage_pids))) != "lineage":
        return fail(f"{path}: lineage events not on the 'lineage' process")

    # Parent links: ids of spans past the cap are still allocated (so
    # nesting stays consistent) but their records are dropped — a retained
    # child may then point at an id with no retained record.  That only
    # happens when ids beyond the retained set exist.
    max_id = max(span_ids)
    for name, parent in parents:
        if parent != 0 and parent not in span_ids and parent <= max_id:
            return fail(f"{path}: span {name!r} parent {parent} not exported")

    for kind in require_lineage:
        if kind not in lineage_kinds:
            have = ", ".join(sorted(lineage_kinds)) or "none"
            return fail(f"{path}: no {kind!r} lineage events (have: {have})")
    for name in expect_processes:
        if name not in processes.values():
            return fail(f"{path}: no process named {name!r}")

    kinds = ", ".join(f"{k}:{v}" for k, v in sorted(lineage_kinds.items()))
    print(
        f"check_trace: OK: {path}: {len(span_ids)} spans on "
        f"{len(used_tracks)} tracks across {len(processes)} processes; "
        f"lineage {{{kinds or 'empty'}}}"
    )
    return 0


def check_jsonl(path):
    spans = lineage = 0
    summaries = {}
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                return fail(f"{path}:{lineno}: {error}")
            kind = record.get("type")
            if kind == "span":
                spans += 1
            elif kind == "lineage":
                lineage += 1
            elif kind in ("span_summary", "lineage_summary"):
                summaries[kind] = record
            else:
                return fail(f"{path}:{lineno}: unexpected type {kind!r}")
    for name, count in (("span_summary", spans), ("lineage_summary", lineage)):
        summary = summaries.get(name)
        if summary is None:
            return fail(f"{path}: missing {name} line")
        if summary["retained"] != count:
            return fail(
                f"{path}: {name} says retained={summary['retained']}, "
                f"counted {count}"
            )
        if summary["recorded"] != summary["retained"] + summary["dropped"]:
            return fail(f"{path}: {name} accounting does not balance: {summary}")
    print(f"check_trace: OK: {path}: {spans} spans, {lineage} lineage records")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace file (.json Chrome / .jsonl)")
    parser.add_argument(
        "--require-lineage",
        action="append",
        default=[],
        metavar="KIND",
        help="fail unless a lineage event of this kind is present "
        "(e.g. mprsf_reset); repeatable",
    )
    parser.add_argument(
        "--expect-process",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless a process with this name exists; repeatable",
    )
    args = parser.parse_args()
    if args.trace.endswith(".jsonl"):
        if args.require_lineage or args.expect_process:
            return fail("--require-lineage/--expect-process are Chrome-JSON only")
        return check_jsonl(args.trace)
    return check_chrome(args.trace, args.require_lineage, args.expect_process)


if __name__ == "__main__":
    sys.exit(main())
