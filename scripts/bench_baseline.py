#!/usr/bin/env python3
"""Record or check the performance baseline (BENCH_pr4.json).

Record mode (the default) runs bench/microbench (google-benchmark JSON)
and bench/parallel_scaling, then writes a baseline file:

    python3 scripts/bench_baseline.py --build-dir build --out BENCH_pr4.json

Check mode re-runs the benches and compares against a committed baseline,
exiting 1 on regression:

    python3 scripts/bench_baseline.py --build-dir build --check BENCH_pr4.json

Two classes of metric, with different tolerances:

  * **Ratios** (telemetry/tracing overhead relative to the uninstrumented
    arm, parallel speedup) are machine-independent — they divide out the
    host's clock.  These fail at >10% regression (--threshold).
  * **Absolute times** (cpu_time per benchmark) move with the host, so a
    checked-in baseline from one machine cannot gate another at 10%.
    They fail only beyond --abs-threshold (default 0.5, i.e. 50% slower),
    a tripwire for gross regressions; tighten it on a dedicated runner.

Only regressions fail; getting faster never does.  --quick shortens the
benchmark min-time for smoke runs (use the default for real baselines).
"""

import argparse
import json
import os
import subprocess
import sys

def ratio_regressed(value, base_value, threshold):
    """True when `value` regressed past `base_value` by more than `threshold`.

    "10% regression" means the metric itself grew by >10% relative to the
    baseline (e.g. a 1.01 overhead ratio rising past 1.111), not an absolute
    +0.10.  Shared with scripts/diff_runs.py so both gates agree on what a
    regression is.  Baselines at (or below) zero cannot be ratio-gated:
    any positive value counts as a regression, zero/negative never does.
    """
    if base_value <= 0.0:
        return value > 0.0
    return value > base_value * (1.0 + threshold)


RATIO_KEYS = [
    # (key, numerator benchmark, denominator benchmark) over cpu_time.
    ("telemetry_overhead_loaded", "BM_SimulateWindow/1/1", "BM_SimulateWindow/0/1"),
    ("tracing_overhead_loaded", "BM_SimulateWindow/2/1", "BM_SimulateWindow/0/1"),
    # The incremental cost of turning tracing on in an already-instrumented
    # run — the docs/TRACING.md budget number.  More stable than the
    # *_overhead_* ratios because the uninstrumented arm's own scatter
    # (±3% on a shared host) divides out.
    ("tracing_increment_loaded", "BM_SimulateWindow/2/1", "BM_SimulateWindow/1/1"),
    ("tracing_increment_idle", "BM_SimulateWindow/2/0", "BM_SimulateWindow/1/0"),
    ("tracing_firehose_loaded", "BM_SimulateWindow/3/1", "BM_SimulateWindow/0/1"),
    ("telemetry_overhead_idle", "BM_SimulateWindow/1/0", "BM_SimulateWindow/0/0"),
    ("tracing_overhead_idle", "BM_SimulateWindow/2/0", "BM_SimulateWindow/0/0"),
    ("tracing_firehose_idle", "BM_SimulateWindow/3/0", "BM_SimulateWindow/0/0"),
    (
        "collect_due_telemetry_counters",
        "BM_VrlPolicyCollectDueTelemetry/0",
        "BM_VrlPolicyCollectDue",
    ),
    (
        "collect_due_telemetry_trace",
        "BM_VrlPolicyCollectDueTelemetry/1",
        "BM_VrlPolicyCollectDue",
    ),
    (
        "collect_due_tracing",
        "BM_VrlPolicyCollectDueTelemetry/2",
        "BM_VrlPolicyCollectDue",
    ),
    # Two-phase refresh API (PR 8): the cost of pulling a legacy policy
    # through dram::GrantRefreshes instead of CollectDue directly, and the
    # scheduler-coupled policies against the same direct-pull baseline.
    (
        "propose_grant_shim_overhead",
        "BM_VrlPolicyGrantRefreshes",
        "BM_VrlPolicyCollectDue",
    ),
    (
        "darp_grant_vs_collect_due",
        "BM_ProposingPolicyGrant/0",
        "BM_VrlPolicyCollectDue",
    ),
    (
        "sarp_grant_vs_collect_due",
        "BM_ProposingPolicyGrant/1",
        "BM_VrlPolicyCollectDue",
    ),
    (
        "vrl_skip_grant_vs_collect_due",
        "BM_ProposingPolicyGrant/2",
        "BM_VrlPolicyCollectDue",
    ),
    # Attribution profiler (PR 10): the cost of profile_phases on an
    # already-instrumented window, against the same telemetry-only arm —
    # the "<= 2% of a loaded window" budget in docs/PROFILING.md.  The
    # profiler samples 1-in-64 phase timings, so this ratio should sit
    # well under the budget line.
    (
        "profiler_overhead_loaded",
        "BM_SimulateWindow/4/1",
        "BM_SimulateWindow/1/1",
    ),
    (
        "profiler_overhead_idle",
        "BM_SimulateWindow/4/0",
        "BM_SimulateWindow/1/0",
    ),
    # Fleet federation (PR 9): one worker 'S'-frame publish and one
    # driver-side decode+absorb against a loaded instrumented window — the
    # "<1% of a loaded window" budget in docs/OBSERVABILITY.md.  A worker
    # publishes at most once per VRL_WORKER_PUBLISH_MS (50 ms default), so
    # the per-window ratio bounds the steady-state overhead.
    (
        "federation_publish_vs_window_loaded",
        "BM_WorkerPublishTelemetry",
        "BM_SimulateWindow/1/1",
    ),
    (
        "federation_absorb_vs_window_loaded",
        "BM_FederatedAbsorb",
        "BM_SimulateWindow/1/1",
    ),
]

# google-benchmark reports cpu_time in each benchmark's own time_unit;
# ratios must compare seconds, not raw numbers (the federation kernels are
# nanosecond-scale, the window arm millisecond-scale).
TIME_UNIT_S = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def cpu_time_s(bench):
    return bench["cpu_time"] * TIME_UNIT_S[bench["time_unit"]]


def run_microbench(build_dir, quick):
    # Medians over interleaved repetitions: single runs scatter by ~±8% on
    # shared machines, which would trip a 10% ratio gate on pure noise.
    cmd = [
        os.path.join(build_dir, "bench", "microbench"),
        "--benchmark_format=json",
        "--benchmark_repetitions=3" if quick else "--benchmark_repetitions=5",
        "--benchmark_enable_random_interleaving=true",
        "--benchmark_report_aggregates_only=true",
    ]
    if quick:
        # Bare double: the tree's google-benchmark predates the "0.05s"
        # suffixed form.
        cmd.append("--benchmark_min_time=0.05")
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    doc = json.loads(out.stdout)
    benchmarks = {}
    for bench in doc["benchmarks"]:
        if bench.get("aggregate_name") != "median":
            continue
        benchmarks[bench["run_name"]] = {
            "cpu_time": bench["cpu_time"],
            "real_time": bench["real_time"],
            "time_unit": bench["time_unit"],
        }
    return benchmarks


def run_parallel_scaling(build_dir):
    path = os.path.join(build_dir, "parallel_scaling_baseline.json")
    subprocess.run(
        [os.path.join(build_dir, "bench", "parallel_scaling"), "--json", path],
        check=True,
        capture_output=True,
        text=True,
    )
    with open(path) as f:
        report = json.load(f)
    rows = report["tables"]["scaling"]["rows"]
    scaling = {}
    for row in rows:
        if row["bit-identical"] != "yes":
            raise SystemExit("bench_baseline: parallel_scaling lost determinism")
        scaling[row["threads"]] = {
            "wall_s": float(row["wall (s)"]),
            "speedup": float(row["speedup"]),
        }
    return scaling


def collect(build_dir, quick):
    benchmarks = run_microbench(build_dir, quick)
    ratios = {}
    for key, numerator, denominator in RATIO_KEYS:
        if numerator in benchmarks and denominator in benchmarks:
            ratios[key] = round(
                cpu_time_s(benchmarks[numerator])
                / cpu_time_s(benchmarks[denominator]),
                6,
            )
    return {
        "schema": "vrl-bench-baseline-v1",
        "source": "scripts/bench_baseline.py",
        "benchmarks": benchmarks,
        "ratios": ratios,
        "parallel_scaling": run_parallel_scaling(build_dir),
    }


def check(current, baseline, threshold, abs_threshold):
    failures = []
    notes = []

    for key, base_value in baseline.get("ratios", {}).items():
        value = current["ratios"].get(key)
        if value is None:
            failures.append(f"ratio {key}: missing from current run")
            continue
        # Overhead ratios hover near 1.0; "10% regression" means the ratio
        # itself grew by >10% (e.g. 1.01 -> 1.12), not overhead*1.1.
        if ratio_regressed(value, base_value, threshold):
            failures.append(
                f"ratio {key}: {value:.4f} vs baseline {base_value:.4f} "
                f"(> +{threshold:.0%})"
            )
        else:
            notes.append(f"ratio {key}: {value:.4f} (baseline {base_value:.4f})")

    for threads, base_row in baseline.get("parallel_scaling", {}).items():
        row = current["parallel_scaling"].get(threads)
        if row is None:
            notes.append(f"speedup @{threads}t: not measured on this host")
            continue
        if row["speedup"] < base_row["speedup"] * (1.0 - threshold):
            failures.append(
                f"speedup @{threads} threads: {row['speedup']:.2f} vs "
                f"baseline {base_row['speedup']:.2f} (> -{threshold:.0%})"
            )
        else:
            notes.append(
                f"speedup @{threads}t: {row['speedup']:.2f} "
                f"(baseline {base_row['speedup']:.2f})"
            )

    for name, base_bench in baseline.get("benchmarks", {}).items():
        bench = current["benchmarks"].get(name)
        if bench is None:
            failures.append(f"benchmark {name}: missing from current run")
            continue
        if ratio_regressed(bench["cpu_time"], base_bench["cpu_time"], abs_threshold):
            failures.append(
                f"abs {name}: {bench['cpu_time']:.3g}{bench['time_unit']} vs "
                f"baseline {base_bench['cpu_time']:.3g}"
                f"{base_bench['time_unit']} (> +{abs_threshold:.0%})"
            )

    for note in notes:
        print(f"bench_baseline: {note}")
    for failure in failures:
        print(f"bench_baseline: REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default="BENCH_pr4.json", help="record mode output")
    parser.add_argument(
        "--check", metavar="BASELINE", help="compare against BASELINE instead"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="allowed relative regression for ratio metrics (default 0.10)",
    )
    parser.add_argument(
        "--abs-threshold",
        type=float,
        default=0.50,
        help="allowed relative regression for absolute times (default 0.50)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="short benchmark runs (smoke only)"
    )
    args = parser.parse_args()

    current = collect(args.build_dir, args.quick)
    if args.check:
        with open(args.check) as f:
            baseline = json.load(f)
        return check(current, baseline, args.threshold, args.abs_threshold)

    with open(args.out, "w") as f:
        json.dump(current, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"bench_baseline: wrote {args.out}")
    for key, value in sorted(current["ratios"].items()):
        print(f"bench_baseline: ratio {key} = {value:.4f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
