#!/usr/bin/env python3
"""vrl-check-journal: validate a crash-tolerance leg journal.

    python3 scripts/check_journal.py run.journal [--campaign NAME]
                                                 [--legs N] [--complete]

The execution runtime (src/runtime/, docs/RESILIENCE.md) journals each
completed campaign leg as one self-checksummed JSONL record:

    {"type":"journal_header","version":1,"campaign":"<name>",
     "config":"<16 hex>","legs":N,"crc":"<16 hex>"}
    {"type":"leg","index":K,"digest":"<16 hex>","payload":"...",
     "crc":"<16 hex>"}

This validator independently re-implements the checks the C++ loader
performs (tests/runtime_test.cpp pins both against the same format):

  * every line's ``crc`` is the FNV-1a 64 hash of the line's bytes up to
    and including the ``,"crc":"`` marker;
  * the header is line 1, version 1, with a 16-hex config digest;
  * leg records carry strictly contiguous indices 0, 1, 2, ... (the
    contiguous-prefix invariant resume relies on) below the header's leg
    count;
  * each leg's ``digest`` matches the FNV-1a 64 hash of its decoded
    payload.

A torn final line (no trailing newline, or a bad trailing checksum) is
reported as an expected crash artifact and tolerated — exactly like the
loader, which drops it and reruns that leg.  Torn or corrupt lines
anywhere earlier fail the check.

Exit code: 0 when the journal is valid, 1 on any violation, 2 on bad
usage/unreadable input.
"""

from __future__ import annotations

import argparse
import sys

CRC_MARKER = ',"crc":"'
FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3
MASK64 = 0xFFFFFFFFFFFFFFFF


def fnv1a64(data: bytes) -> int:
    """FNV-1a 64 — must match vrl::runtime::Fnv1a64 forever."""
    h = FNV_OFFSET
    for b in data:
        h ^= b
        h = (h * FNV_PRIME) & MASK64
    return h


def json_unescape(text: str) -> str:
    """Inverse of telemetry::JsonEscape (the journal's escape set)."""
    out = []
    i = 0
    while i < len(text):
        c = text[i]
        if c != "\\":
            out.append(c)
            i += 1
            continue
        if i + 1 >= len(text):
            raise ValueError("dangling escape")
        e = text[i + 1]
        simple = {'"': '"', "\\": "\\", "n": "\n", "r": "\r", "t": "\t"}
        if e in simple:
            out.append(simple[e])
            i += 2
        elif e == "u":
            if i + 6 > len(text):
                raise ValueError("truncated \\u escape")
            out.append(chr(int(text[i + 2 : i + 6], 16)))
            i += 6
        else:
            raise ValueError(f"unknown escape \\{e}")
    return "".join(out)


def field_str(line: str, key: str) -> str | None:
    """Extracts "key":"..." respecting escapes (fixed layout, not JSON)."""
    needle = f'"{key}":"'
    start = line.find(needle)
    if start < 0:
        return None
    i = start + len(needle)
    raw = []
    while i < len(line):
        c = line[i]
        if c == '"':
            return json_unescape("".join(raw))
        raw.append(c)
        if c == "\\" and i + 1 < len(line):
            raw.append(line[i + 1])
            i += 1
        i += 1
    return None


def field_int(line: str, key: str) -> int | None:
    needle = f'"{key}":'
    start = line.find(needle)
    if start < 0:
        return None
    i = start + len(needle)
    j = i
    while j < len(line) and line[j].isdigit():
        j += 1
    if j == i:
        return None
    return int(line[i:j])


def line_crc_ok(line: str) -> bool:
    marker = line.rfind(CRC_MARKER)
    if marker < 0:
        return False
    crc_begin = marker + len(CRC_MARKER)
    if len(line) != crc_begin + 18 or not line.endswith('"}'):
        return False
    expected = f"{fnv1a64(line[:crc_begin].encode()):016x}"
    return line[crc_begin : crc_begin + 16] == expected


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("journal", help="leg journal (JSONL) to validate")
    parser.add_argument(
        "--campaign", help="require this campaign name in the header"
    )
    parser.add_argument(
        "--legs", type=int, help="require this leg count in the header"
    )
    parser.add_argument(
        "--complete",
        action="store_true",
        help="require every declared leg to be committed",
    )
    args = parser.parse_args()

    try:
        with open(args.journal, "rb") as fh:
            blob = fh.read().decode("utf-8")
    except OSError as error:
        print(f"error: cannot read '{args.journal}': {error}",
              file=sys.stderr)
        return 2

    if not blob:
        print("error: journal is empty", file=sys.stderr)
        return 1

    lines = blob.split("\n")
    torn_tail = lines[-1] != ""  # No trailing newline: writer interrupted.
    if not torn_tail:
        lines.pop()

    problems: list[str] = []
    dropped_tail = False
    if lines and (torn_tail or not line_crc_ok(lines[-1])):
        if torn_tail or not line_crc_ok(lines[-1]):
            dropped_tail = True
            lines.pop()

    if not lines:
        problems.append("no intact records (even the header is torn)")

    header = lines[0] if lines else ""
    if lines:
        if not line_crc_ok(header):
            problems.append("line 1: header checksum mismatch")
        if field_str(header, "type") != "journal_header":
            problems.append("line 1: not a journal_header record")
        if field_int(header, "version") != 1:
            problems.append("line 1: unsupported journal version")
        config = field_str(header, "config")
        if config is None or len(config) != 16:
            problems.append("line 1: config digest is not 16 hex chars")
        campaign = field_str(header, "campaign")
        declared_legs = field_int(header, "legs")
        if args.campaign is not None and campaign != args.campaign:
            problems.append(
                f"header campaign '{campaign}' != expected "
                f"'{args.campaign}'"
            )
        if args.legs is not None and declared_legs != args.legs:
            problems.append(
                f"header leg count {declared_legs} != expected {args.legs}"
            )

    committed = 0
    for lineno, line in enumerate(lines[1:], start=2):
        if not line_crc_ok(line):
            problems.append(f"line {lineno}: checksum mismatch")
            continue
        if field_str(line, "type") != "leg":
            problems.append(f"line {lineno}: not a leg record")
            continue
        index = field_int(line, "index")
        expected_index = lineno - 2
        if index != expected_index:
            problems.append(
                f"line {lineno}: leg index {index} breaks the contiguous-"
                f"prefix invariant (expected {expected_index})"
            )
        if (
            lines
            and (declared := field_int(header, "legs")) is not None
            and index is not None
            and index >= declared
        ):
            problems.append(
                f"line {lineno}: leg index {index} exceeds declared "
                f"{declared} legs"
            )
        payload = field_str(line, "payload")
        digest = field_str(line, "digest")
        if payload is None or digest is None:
            problems.append(f"line {lineno}: missing payload/digest field")
            continue
        if f"{fnv1a64(payload.encode()):016x}" != digest:
            problems.append(f"line {lineno}: payload digest mismatch")
        committed += 1

    declared = field_int(header, "legs") if lines else None
    if args.complete and declared is not None and committed != declared:
        problems.append(
            f"journal holds {committed}/{declared} legs but --complete "
            "was required"
        )

    for problem in problems:
        print(f"FAIL: {problem}")
    status = "FAIL" if problems else "OK"
    tail_note = " (torn final line dropped — crash artifact)" \
        if dropped_tail else ""
    print(
        f"{status}: {args.journal}: {committed}/{declared} legs committed"
        f"{tail_note}"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
