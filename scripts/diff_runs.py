#!/usr/bin/env python3
"""vrl-diff: compare two exported runs and gate on regressions.

    python3 scripts/diff_runs.py baseline.json current.json [--threshold T]

Both inputs are either report JSON files written by the uniform `--json`
flag (bench/reporting.hpp) or trace JSONL files written by `--trace-out
foo.jsonl`.  Every numeric value is extracted into a flat metric map:

  * ``meta.<key>``                      numeric report metadata
  * ``telemetry.<name>.<field>``        telemetry table entries (timers are
                                        skipped: wall time is machine noise,
                                        not simulation state)
  * ``<table>.<row-key>.<column>``      other tables, rows keyed by their
                                        first column
  * ``trace.<summary>.<field>``         span/lineage summary accounting of
                                        a JSONL trace, plus per-type line
                                        counts

The gate reuses ``ratio_regressed`` from scripts/bench_baseline.py,
applied in BOTH directions: a metric regresses when it moved by more than
``--threshold`` relative to the baseline either way.  The default
threshold is 0 — the simulator is deterministic (docs/EXPERIMENTS.md), so
two runs of the same configuration must produce identical metrics and any
drift is a real behaviour change.  Raise the threshold when diffing runs
that are *expected* to differ (other seeds, hosts, configs).

Keys present on only one side are reported; they fail the gate unless
--allow-missing.  Exit code: 0 when no metric regressed, 1 otherwise,
2 on bad input.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_baseline import ratio_regressed  # noqa: E402


def to_number(text):
    """The report writer renders every cell as a string; recover numbers."""
    if isinstance(text, (int, float)):
        return float(text)
    try:
        return float(text)
    except (TypeError, ValueError):
        return None


def extract_report(doc, path):
    metrics = {}
    for key, value in doc.get("meta", {}).items():
        number = to_number(value)
        if number is not None:
            metrics[f"meta.{key}"] = number
    for table_name, table in doc.get("tables", {}).items():
        headers = table.get("headers", [])
        if not headers:
            continue
        if table_name == "telemetry":
            for row in table.get("rows", []):
                if row.get("kind") == "timer":
                    continue  # wall time: machine-dependent, never gated
                number = to_number(row.get("value"))
                if number is not None:
                    metrics[f"telemetry.{row['name']}.{row['field']}"] = number
            continue
        if table_name in ("profile", "profile_tree"):
            continue  # wall-time phase tables (--profile): machine-dependent
            # (attribution counts are gated by scripts/diff_profile.py on
            # the scrubbed --profile-out export instead)
        key_column = headers[0]
        for index, row in enumerate(table.get("rows", [])):
            row_key = row.get(key_column, str(index))
            for column in headers[1:]:
                number = to_number(row.get(column))
                if number is not None:
                    metrics[f"{table_name}.{row_key}.{column}"] = number
    if not metrics:
        raise SystemExit(f"diff_runs: {path}: no numeric metrics found")
    return metrics


def extract_trace_jsonl(path):
    metrics = {}
    counts = {}
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise SystemExit(f"diff_runs: {path}:{lineno}: {error}")
            kind = record.get("type", "?")
            counts[kind] = counts.get(kind, 0) + 1
            if kind in ("span_summary", "lineage_summary"):
                for field in ("recorded", "retained", "dropped"):
                    if field in record:
                        metrics[f"trace.{kind}.{field}"] = float(record[field])
    for kind, count in counts.items():
        if not kind.endswith("_summary"):
            metrics[f"trace.lines.{kind}"] = float(count)
    if not metrics:
        raise SystemExit(f"diff_runs: {path}: no trace records found")
    return metrics


def load_metrics(path):
    if path.endswith(".jsonl"):
        return extract_trace_jsonl(path)
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"diff_runs: {path}: {error}")
    return extract_report(doc, path)


def diff(baseline, current, threshold, allow_missing):
    regressions = []
    changed = []
    for key in sorted(set(baseline) | set(current)):
        base_value = baseline.get(key)
        value = current.get(key)
        if base_value is None or value is None:
            side = "baseline" if base_value is None else "current"
            message = f"{key}: only in {'current' if side == 'baseline' else 'baseline'}"
            if allow_missing:
                changed.append(message)
            else:
                regressions.append(message)
            continue
        if value == base_value:
            continue
        # Symmetric gate: drifting up OR down past the threshold fails.
        moved = ratio_regressed(value, base_value, threshold) or ratio_regressed(
            base_value, value, threshold
        )
        delta = f"{key}: {base_value:g} -> {value:g}"
        if moved:
            regressions.append(delta)
        else:
            changed.append(delta)
    return regressions, changed


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline export (.json report / .jsonl trace)")
    parser.add_argument("current", help="current export of the same kind")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.0,
        help="allowed relative drift either way (default 0: exact match)",
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="metrics present on only one side are noted, not failed",
    )
    args = parser.parse_args()

    baseline = load_metrics(args.baseline)
    current = load_metrics(args.current)
    regressions, changed = diff(baseline, current, args.threshold, args.allow_missing)

    compared = len(set(baseline) & set(current))
    for note in changed:
        print(f"diff_runs: drift (within threshold): {note}")
    for regression in regressions:
        print(f"diff_runs: REGRESSION: {regression}", file=sys.stderr)
    verdict = "FAIL" if regressions else "OK"
    print(
        f"diff_runs: {verdict}: {compared} metrics compared, "
        f"{len(regressions)} regressed, {len(changed)} drifted within threshold"
    )
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
