#!/usr/bin/env python3
"""Validate a Prometheus text exposition scraped from GET /metrics.

    python3 scripts/check_metrics.py scrape.txt [earlier_scrape.txt ...]

The structural mirror of scripts/check_trace.py for the monitoring plane
(docs/OBSERVABILITY.md).  Checks (stdlib only):

  * every line is a comment, blank, or matches the exposition grammar
    ``name{labels} value`` (version 0.0.4);
  * every sample's family has a preceding ``# TYPE`` line, each family is
    declared exactly once, and sample names agree with the declared type
    (counters end in ``_total``; histograms expose only
    ``_bucket``/``_sum``/``_count`` series);
  * histogram buckets are cumulative: counts never decrease as ``le``
    grows, an ``le="+Inf"`` bucket exists, and it equals ``_count`` —
    validated per non-``le`` label set, so each federated
    ``{worker,leg}`` member histogram stands on its own;
  * no duplicate sample (same name + labels) within one scrape;
  * fleet-federation label syntax: any sample carrying a ``worker`` label
    must pair it with a ``leg`` label, ``worker`` values are decimal slot
    ordinals and ``leg`` values match ``leg<N>`` (docs/OBSERVABILITY.md).

With two or more files (oldest first), counters must additionally be
monotone non-decreasing across scrapes — the live-publishing contract:
a later scrape of the same run can never lose counted events.  Labels are
part of the sample identity, so this covers per-worker federated counters
too: each ``{worker=...,leg=...}`` series must grow independently and may
never vanish between scrapes (the federation registry is cumulative).

``--federated`` additionally requires at least one worker-labeled sample
per scrape — scraping a supervised campaign's /metrics must actually show
the fleet, not silently degrade to the unlabeled aggregate.

Exit code 0 when every file (and the cross-scrape check) passes, 1 with a
diagnostic otherwise.
"""

import argparse
import re
import sys

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>-?[0-9]+))?$"
)
LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')
TYPE_RE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$"
)
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")
WORKER_RE = re.compile(r"^[0-9]+$")
LEG_RE = re.compile(r"^leg[0-9]+$")


def fail(message):
    print(f"check_metrics: FAIL: {message}", file=sys.stderr)
    return None


def parse_value(text):
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    try:
        return float(text)  # accepts NaN
    except ValueError:
        return None


def family_of(name, types):
    """The declared family a sample name belongs to, or None."""
    if name in types:
        return name
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def parse_exposition(path):
    """Parse one exposition file into (types, samples) or None on error.

    types: family -> declared type.  samples: (name, labels) -> value.
    """
    types = {}
    samples = {}
    with open(path) as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            where = f"{path}:{lineno}"
            if line == "" or line.startswith("# HELP"):
                continue
            if line.startswith("# TYPE"):
                match = TYPE_RE.match(line)
                if match is None:
                    return fail(f"{where}: malformed TYPE line: {line!r}")
                family = match.group(1)
                if family in types:
                    return fail(f"{where}: duplicate TYPE for {family}")
                types[family] = match.group(2)
                continue
            if line.startswith("#"):
                continue  # other comments are legal
            match = SAMPLE_RE.match(line)
            if match is None:
                return fail(f"{where}: not a valid sample line: {line!r}")
            name = match.group("name")
            value = parse_value(match.group("value"))
            if value is None:
                return fail(f"{where}: bad value {match.group('value')!r}")
            labels = ()
            if match.group("labels"):
                pairs = []
                for part in match.group("labels").rstrip(",").split(","):
                    label = LABEL_RE.match(part)
                    if label is None:
                        return fail(f"{where}: bad label {part!r}")
                    pairs.append((label.group(1), label.group(2)))
                labels = tuple(sorted(pairs))
            family = family_of(name, types)
            if family is None:
                return fail(f"{where}: sample {name} has no preceding TYPE")
            declared = types[family]
            if declared == "counter" and not name.endswith("_total"):
                return fail(f"{where}: counter sample {name} lacks _total suffix")
            if declared == "histogram" and name == family:
                return fail(
                    f"{where}: histogram {family} exposes a bare sample "
                    f"(expected {family}_bucket/_sum/_count)"
                )
            label_map = dict(labels)
            if "worker" in label_map or "leg" in label_map:
                worker = label_map.get("worker")
                leg = label_map.get("leg")
                if worker is None or leg is None:
                    return fail(
                        f"{where}: federated sample {name} must carry both "
                        f"worker and leg labels, got {label_map}"
                    )
                if WORKER_RE.match(worker) is None:
                    return fail(
                        f"{where}: worker label {worker!r} is not a decimal "
                        f"slot ordinal"
                    )
                if LEG_RE.match(leg) is None:
                    return fail(
                        f"{where}: leg label {leg!r} does not match leg<N>"
                    )
            if (name, labels) in samples:
                return fail(f"{where}: duplicate sample {name}{dict(labels)}")
            samples[(name, labels)] = value
    if not samples:
        return fail(f"{path}: no samples")
    return types, samples


def check_histograms(path, types, samples):
    # Labeled histograms (the federated per-{worker,leg} series) are
    # independent series sharing one family: group by the non-le label set
    # so each member's buckets are validated on their own.
    ok = True
    for family, declared in types.items():
        if declared != "histogram":
            continue
        series = {}  # non-le labels -> {"buckets": [...], "count", "sum"}
        for (name, labels), value in samples.items():
            if name not in (f"{family}_bucket", f"{family}_count", f"{family}_sum"):
                continue
            others = tuple(pair for pair in labels if pair[0] != "le")
            entry = series.setdefault(
                others, {"buckets": [], "count": None, "sum": False}
            )
            if name == f"{family}_bucket":
                le = dict(labels).get("le")
                if le is None:
                    fail(f"{path}: {name} sample without an le label")
                    ok = False
                    continue
                entry["buckets"].append(
                    (float("inf") if le == "+Inf" else float(le), value)
                )
            elif name == f"{family}_count":
                entry["count"] = value
            else:
                entry["sum"] = True
        for others, entry in series.items():
            buckets = sorted(entry["buckets"])
            tag = f"{family}{dict(others)}" if others else family
            if not buckets or buckets[-1][0] != float("inf"):
                fail(f"{path}: histogram {tag} has no le=\"+Inf\" bucket")
                ok = False
                continue
            previous = -1.0
            for le, value in buckets:
                if value < previous:
                    fail(
                        f"{path}: histogram {tag} is not cumulative at "
                        f'le="{le:g}": {value:g} < {previous:g}'
                    )
                    ok = False
                previous = value
            if entry["count"] is None or not entry["sum"]:
                fail(f"{path}: histogram {tag} is missing _count or _sum")
                ok = False
            elif buckets[-1][1] != entry["count"]:
                fail(
                    f"{path}: histogram {tag} le=\"+Inf\" bucket "
                    f"{buckets[-1][1]:g} != _count {entry['count']:g}"
                )
                ok = False
    return ok


def check_monotone(earlier_path, earlier, later_path, later):
    """Counters may only grow between an earlier and a later scrape."""
    earlier_types, earlier_samples = earlier
    later_types, later_samples = later
    ok = True
    for key, before in earlier_samples.items():
        name, labels = key
        family = family_of(name, earlier_types)
        if earlier_types.get(family) != "counter":
            continue
        if later_types.get(family) != "counter":
            fail(f"{later_path}: counter {family} vanished since {earlier_path}")
            ok = False
            continue
        after = later_samples.get(key)
        if after is None:
            fail(f"{later_path}: counter sample {name} vanished")
            ok = False
        elif after < before:
            fail(
                f"{later_path}: counter {name} went backwards: "
                f"{before:g} -> {after:g}"
            )
            ok = False
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "scrapes",
        nargs="+",
        metavar="SCRAPE",
        help="exposition file(s); with several, oldest first",
    )
    parser.add_argument(
        "--federated",
        action="store_true",
        help="require worker/leg-labeled samples in every scrape (a "
        "supervised campaign's federated /metrics)",
    )
    args = parser.parse_args()

    parsed = []
    for path in args.scrapes:
        result = parse_exposition(path)
        if result is None:
            return 1
        if not check_histograms(path, *result):
            return 1
        if args.federated:
            _, samples = result
            workers = sorted(
                {
                    dict(labels)["worker"]
                    for (_, labels) in samples
                    if "worker" in dict(labels)
                }
            )
            if not workers:
                fail(f"{path}: --federated but no worker-labeled samples")
                return 1
            print(
                f"check_metrics: {path}: federated series from "
                f"worker(s) {', '.join(workers)}"
            )
        parsed.append(result)

    for (earlier_path, earlier), (later_path, later) in zip(
        zip(args.scrapes, parsed), zip(args.scrapes[1:], parsed[1:])
    ):
        if not check_monotone(earlier_path, earlier, later_path, later):
            return 1

    for path, (types, samples) in zip(args.scrapes, parsed):
        kinds = {}
        for declared in types.values():
            kinds[declared] = kinds.get(declared, 0) + 1
        summary = ", ".join(f"{count} {kind}s" for kind, count in sorted(kinds.items()))
        print(f"check_metrics: OK: {path}: {len(samples)} samples ({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
