#!/usr/bin/env python3
"""Validate a Prometheus text exposition scraped from GET /metrics.

    python3 scripts/check_metrics.py scrape.txt [earlier_scrape.txt ...]

The structural mirror of scripts/check_trace.py for the monitoring plane
(docs/OBSERVABILITY.md).  Checks (stdlib only):

  * every line is a comment, blank, or matches the exposition grammar
    ``name{labels} value`` (version 0.0.4);
  * every sample's family has a preceding ``# TYPE`` line, each family is
    declared exactly once, and sample names agree with the declared type
    (counters end in ``_total``; histograms expose only
    ``_bucket``/``_sum``/``_count`` series);
  * histogram buckets are cumulative: counts never decrease as ``le``
    grows, an ``le="+Inf"`` bucket exists, and it equals ``_count``;
  * no duplicate sample (same name + labels) within one scrape.

With two or more files (oldest first), counters must additionally be
monotone non-decreasing across scrapes — the live-publishing contract:
a later scrape of the same run can never lose counted events.

Exit code 0 when every file (and the cross-scrape check) passes, 1 with a
diagnostic otherwise.
"""

import argparse
import re
import sys

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>-?[0-9]+))?$"
)
LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')
TYPE_RE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$"
)
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def fail(message):
    print(f"check_metrics: FAIL: {message}", file=sys.stderr)
    return None


def parse_value(text):
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    try:
        return float(text)  # accepts NaN
    except ValueError:
        return None


def family_of(name, types):
    """The declared family a sample name belongs to, or None."""
    if name in types:
        return name
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def parse_exposition(path):
    """Parse one exposition file into (types, samples) or None on error.

    types: family -> declared type.  samples: (name, labels) -> value.
    """
    types = {}
    samples = {}
    with open(path) as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            where = f"{path}:{lineno}"
            if line == "" or line.startswith("# HELP"):
                continue
            if line.startswith("# TYPE"):
                match = TYPE_RE.match(line)
                if match is None:
                    return fail(f"{where}: malformed TYPE line: {line!r}")
                family = match.group(1)
                if family in types:
                    return fail(f"{where}: duplicate TYPE for {family}")
                types[family] = match.group(2)
                continue
            if line.startswith("#"):
                continue  # other comments are legal
            match = SAMPLE_RE.match(line)
            if match is None:
                return fail(f"{where}: not a valid sample line: {line!r}")
            name = match.group("name")
            value = parse_value(match.group("value"))
            if value is None:
                return fail(f"{where}: bad value {match.group('value')!r}")
            labels = ()
            if match.group("labels"):
                pairs = []
                for part in match.group("labels").rstrip(",").split(","):
                    label = LABEL_RE.match(part)
                    if label is None:
                        return fail(f"{where}: bad label {part!r}")
                    pairs.append((label.group(1), label.group(2)))
                labels = tuple(sorted(pairs))
            family = family_of(name, types)
            if family is None:
                return fail(f"{where}: sample {name} has no preceding TYPE")
            declared = types[family]
            if declared == "counter" and not name.endswith("_total"):
                return fail(f"{where}: counter sample {name} lacks _total suffix")
            if declared == "histogram" and name == family:
                return fail(
                    f"{where}: histogram {family} exposes a bare sample "
                    f"(expected {family}_bucket/_sum/_count)"
                )
            if (name, labels) in samples:
                return fail(f"{where}: duplicate sample {name}{dict(labels)}")
            samples[(name, labels)] = value
    if not samples:
        return fail(f"{path}: no samples")
    return types, samples


def check_histograms(path, types, samples):
    ok = True
    for family, declared in types.items():
        if declared != "histogram":
            continue
        buckets = []  # (le, value)
        count = None
        has_sum = False
        for (name, labels), value in samples.items():
            if name == f"{family}_bucket":
                le = dict(labels).get("le")
                if le is None:
                    fail(f"{path}: {name} sample without an le label")
                    ok = False
                    continue
                buckets.append((float("inf") if le == "+Inf" else float(le), value))
            elif name == f"{family}_count" and not labels:
                count = value
            elif name == f"{family}_sum" and not labels:
                has_sum = True
        buckets.sort()
        if not buckets or buckets[-1][0] != float("inf"):
            fail(f"{path}: histogram {family} has no le=\"+Inf\" bucket")
            ok = False
            continue
        previous = -1.0
        for le, value in buckets:
            if value < previous:
                fail(
                    f"{path}: histogram {family} is not cumulative at "
                    f'le="{le:g}": {value:g} < {previous:g}'
                )
                ok = False
            previous = value
        if count is None or not has_sum:
            fail(f"{path}: histogram {family} is missing _count or _sum")
            ok = False
        elif buckets[-1][1] != count:
            fail(
                f"{path}: histogram {family} le=\"+Inf\" bucket "
                f"{buckets[-1][1]:g} != _count {count:g}"
            )
            ok = False
    return ok


def check_monotone(earlier_path, earlier, later_path, later):
    """Counters may only grow between an earlier and a later scrape."""
    earlier_types, earlier_samples = earlier
    later_types, later_samples = later
    ok = True
    for key, before in earlier_samples.items():
        name, labels = key
        family = family_of(name, earlier_types)
        if earlier_types.get(family) != "counter":
            continue
        if later_types.get(family) != "counter":
            fail(f"{later_path}: counter {family} vanished since {earlier_path}")
            ok = False
            continue
        after = later_samples.get(key)
        if after is None:
            fail(f"{later_path}: counter sample {name} vanished")
            ok = False
        elif after < before:
            fail(
                f"{later_path}: counter {name} went backwards: "
                f"{before:g} -> {after:g}"
            )
            ok = False
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "scrapes",
        nargs="+",
        metavar="SCRAPE",
        help="exposition file(s); with several, oldest first",
    )
    args = parser.parse_args()

    parsed = []
    for path in args.scrapes:
        result = parse_exposition(path)
        if result is None:
            return 1
        if not check_histograms(path, *result):
            return 1
        parsed.append(result)

    for (earlier_path, earlier), (later_path, later) in zip(
        zip(args.scrapes, parsed), zip(args.scrapes[1:], parsed[1:])
    ):
        if not check_monotone(earlier_path, earlier, later_path, later):
            return 1

    for path, (types, samples) in zip(args.scrapes, parsed):
        kinds = {}
        for declared in types.values():
            kinds[declared] = kinds.get(declared, 0) + 1
        summary = ", ".join(f"{count} {kind}s" for kind, count in sorted(kinds.items()))
        print(f"check_metrics: OK: {path}: {len(samples)} samples ({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
