#!/usr/bin/env python3
"""Diff two vrl.profile.v1 attribution exports and gate on regressions.

    python3 scripts/diff_profile.py baseline.json current.json [--threshold T]

Nodes are matched by ``path`` (the ';'-joined root chain — stable across
runs because the tree is deterministic; docs/PROFILING.md).  For each
common node the per-call inclusive and exclusive costs are compared with
the same ``ratio_regressed`` gate as scripts/diff_runs.py: a phase
regresses when its cost per call grew by more than ``--threshold``
relative to the baseline.  Per-call (not total) cost is what is gated so
a run that simply does more work — more windows, more legs — does not
read as a slowdown.

Call counts are compared exactly by default: the profiler's counts are
deterministic, so a count change means the simulation itself changed.
Relax with --allow-count-drift when diffing different configurations.

Scrubbed exports (--profile-scrub, all times zero) skip the time gates
and compare tree shape + counts only — that is the CI byte-identity mode.

Exit 0 when nothing regressed, 1 otherwise, 2 on bad input.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_baseline import ratio_regressed  # noqa: E402


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"diff_profile: {path}: {error}")
    if doc.get("schema") != "vrl.profile.v1":
        raise SystemExit(
            f"diff_profile: {path}: schema {doc.get('schema')!r}, "
            "want 'vrl.profile.v1' (a --profile-out JSON export)"
        )
    return {node["path"]: node for node in doc.get("nodes", [])}


def scrubbed(nodes):
    return all(
        node.get("inclusive_s", 0) == 0 and node.get("exclusive_s", 0) == 0
        for node in nodes.values()
    )


def diff(baseline, current, threshold, allow_count_drift):
    regressions = []
    notes = []
    skip_times = scrubbed(baseline) or scrubbed(current)
    if skip_times:
        notes.append("times scrubbed on at least one side: comparing shape/counts only")

    for path in sorted(set(baseline) | set(current)):
        base = baseline.get(path)
        node = current.get(path)
        if base is None:
            notes.append(f"{path}: new phase (not in baseline)")
            continue
        if node is None:
            regressions.append(f"{path}: phase disappeared from current run")
            continue
        if base["calls"] != node["calls"]:
            message = f"{path}: calls {base['calls']} -> {node['calls']}"
            if allow_count_drift:
                notes.append(message)
            else:
                regressions.append(message + " (counts are deterministic)")
        if base.get("units", 0) != node.get("units", 0):
            message = f"{path}: units {base.get('units', 0)} -> {node.get('units', 0)}"
            if allow_count_drift:
                notes.append(message)
            else:
                regressions.append(message + " (counts are deterministic)")
        if skip_times:
            continue
        for field in ("inclusive_s", "exclusive_s"):
            base_per_call = base[field] / max(1, base["calls"])
            per_call = node[field] / max(1, node["calls"])
            if ratio_regressed(per_call, base_per_call, threshold):
                regressions.append(
                    f"{path}: {field}/call {base_per_call:.3e} -> "
                    f"{per_call:.3e} (> +{threshold:.0%})"
                )
            elif per_call != base_per_call:
                notes.append(
                    f"{path}: {field}/call {base_per_call:.3e} -> {per_call:.3e}"
                )
    return regressions, notes


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline --profile-out JSON")
    parser.add_argument("current", help="current --profile-out JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="allowed relative per-call cost growth (default 0.10)",
    )
    parser.add_argument(
        "--allow-count-drift",
        action="store_true",
        help="call/unit count changes are noted, not failed "
        "(for diffing different configurations)",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    regressions, notes = diff(
        baseline, current, args.threshold, args.allow_count_drift
    )

    for note in notes:
        print(f"diff_profile: {note}")
    for regression in regressions:
        print(f"diff_profile: REGRESSION: {regression}", file=sys.stderr)
    compared = len(set(baseline) & set(current))
    verdict = "FAIL" if regressions else "OK"
    print(
        f"diff_profile: {verdict}: {compared} phases compared, "
        f"{len(regressions)} regressed"
    )
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
