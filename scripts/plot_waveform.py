#!/usr/bin/env python3
"""Plot a waveform CSV produced by examples/circuit_waveform.

Usage:
    ./build/examples/circuit_waveform refresh /tmp/refresh.csv
    python3 scripts/plot_waveform.py /tmp/refresh.csv [out.png]

Reproduces the visual style of the paper's Fig. 5 / Fig. 1a insets: one
trace per probed node over time in nanoseconds.
"""

import csv
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    path = sys.argv[1]
    out = sys.argv[2] if len(sys.argv) > 2 else path.rsplit(".", 1)[0] + ".png"

    with open(path, newline="") as f:
        reader = csv.reader(f)
        header = next(reader)
        rows = [[float(x) for x in row] for row in reader]

    times = [r[0] for r in rows]
    series = {name: [r[i] for r in rows] for i, name in enumerate(header) if i}

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; printing summary instead")
        for name, values in series.items():
            print(f"{name}: start={values[0]:.3f}V end={values[-1]:.3f}V")
        return 0

    fig, ax = plt.subplots(figsize=(7, 4))
    for name, values in series.items():
        ax.plot(times, values, label=name)
    ax.set_xlabel("time (ns)")
    ax.set_ylabel("voltage (V)")
    ax.legend()
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
