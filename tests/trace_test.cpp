#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "trace/address.hpp"
#include "trace/io.hpp"
#include "trace/stats.hpp"
#include "trace/synthetic.hpp"

namespace vrl::trace {
namespace {

AddressGeometry SmallGeometry() {
  AddressGeometry g;
  g.banks = 4;
  g.rows = 64;
  g.columns = 8;
  return g;
}

// ---------------------------------------------------------------------------
// AddressMapper
// ---------------------------------------------------------------------------

TEST(AddressMapper, RoundTripsAllCoordinates) {
  const AddressMapper mapper(SmallGeometry());
  for (std::size_t bank = 0; bank < 4; ++bank) {
    for (std::size_t row = 0; row < 64; row += 13) {
      for (std::size_t col = 0; col < 8; ++col) {
        const auto addr = mapper.Encode({bank, row, col});
        const auto c = mapper.Decode(addr);
        EXPECT_EQ(c.bank, bank);
        EXPECT_EQ(c.row, row);
        EXPECT_EQ(c.column, col);
      }
    }
  }
}

TEST(AddressMapper, ConsecutiveLinesInterleaveBanks) {
  const AddressMapper mapper(SmallGeometry());
  for (std::uint64_t a = 0; a < 16; ++a) {
    EXPECT_EQ(mapper.Decode(a).bank, a % 4);
  }
}

TEST(AddressMapper, SequentialStreamStaysInRowAcrossBanks) {
  // banks * columns consecutive lines share a row index.
  const AddressMapper mapper(SmallGeometry());
  const std::uint64_t lines_per_row = 4 * 8;
  for (std::uint64_t a = 0; a < lines_per_row; ++a) {
    EXPECT_EQ(mapper.Decode(a).row, 0u);
  }
  EXPECT_EQ(mapper.Decode(lines_per_row).row, 1u);
}

TEST(AddressMapper, WrapsOutOfRangeAddresses) {
  const AddressMapper mapper(SmallGeometry());
  const auto total = SmallGeometry().TotalLines();
  const auto c1 = mapper.Decode(5);
  const auto c2 = mapper.Decode(5 + total);
  EXPECT_EQ(c1.bank, c2.bank);
  EXPECT_EQ(c1.row, c2.row);
  EXPECT_EQ(c1.column, c2.column);
}

TEST(AddressMapper, EncodeRejectsOutOfRange) {
  const AddressMapper mapper(SmallGeometry());
  EXPECT_THROW(mapper.Encode({4, 0, 0}), ConfigError);
  EXPECT_THROW(mapper.Encode({0, 64, 0}), ConfigError);
  EXPECT_THROW(mapper.Encode({0, 0, 8}), ConfigError);
}

TEST(MapToRequestsTest, PreservesOrderAndTypes) {
  const AddressMapper mapper(SmallGeometry());
  std::vector<TraceRecord> records{
      {10, 0, false}, {20, 1, true}, {30, 2, false}};
  const auto requests = MapToRequests(records, mapper);
  ASSERT_EQ(requests.size(), 3u);
  EXPECT_EQ(requests[0].arrival, 10u);
  EXPECT_EQ(requests[1].type, dram::RequestType::kWrite);
  EXPECT_EQ(requests[2].bank, 2u);
}

// ---------------------------------------------------------------------------
// Trace I/O
// ---------------------------------------------------------------------------

std::vector<TraceRecord> SampleRecords() {
  return {{0, 0x10, false}, {100, 0xABCDEF, true}, {250, 7, false}};
}

TEST(TraceIo, TextRoundTrip) {
  std::stringstream ss;
  WriteText(ss, SampleRecords());
  const auto back = ReadText(ss);
  ASSERT_EQ(back.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(back[i].cycle, SampleRecords()[i].cycle);
    EXPECT_EQ(back[i].address, SampleRecords()[i].address);
    EXPECT_EQ(back[i].is_write, SampleRecords()[i].is_write);
  }
}

TEST(TraceIo, BinaryRoundTrip) {
  std::stringstream ss;
  WriteBinary(ss, SampleRecords());
  const auto back = ReadBinary(ss);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[1].address, 0xABCDEFu);
  EXPECT_TRUE(back[1].is_write);
}

TEST(TraceIo, TextSkipsCommentsAndBlanks) {
  std::stringstream ss("# header\n\n10 R 0x20\n   \n20 W 0x30 # inline\n");
  const auto records = ReadText(ss);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].address, 0x20u);
  EXPECT_TRUE(records[1].is_write);
}

TEST(TraceIo, TextRejectsMalformed) {
  std::stringstream bad_op("10 X 0x20\n");
  EXPECT_THROW(ReadText(bad_op), ParseError);
  std::stringstream bad_addr("10 R zzz\n");
  EXPECT_THROW(ReadText(bad_addr), ParseError);
  std::stringstream missing("10\n");
  EXPECT_THROW(ReadText(missing), ParseError);
}

TEST(TraceIo, TruncatedFinalLineIsDiagnosedNotDropped) {
  // An interrupted writer leaves a final line without a newline; if it no
  // longer parses, the reader must say "truncated", not "malformed".
  std::stringstream torn("10 R 0x20\n20 W");
  try {
    ReadText(torn);
    FAIL() << "expected ParseError for the torn tail";
  } catch (const ParseError& error) {
    EXPECT_NE(std::string(error.what()).find("truncated final line"),
              std::string::npos)
        << error.what();
  }
  // A *complete* final record without a trailing newline is still fine.
  std::stringstream no_newline("10 R 0x20\n20 W 0x30");
  EXPECT_EQ(ReadText(no_newline).size(), 2u);

  std::stringstream ram_torn("0x100 R\n0x200");
  EXPECT_THROW(ReadRamulatorTrace(ram_torn, 4), ParseError);
}

TEST(TraceIo, BinaryRejectsBadMagic) {
  std::stringstream ss("NOTATRACE........");
  EXPECT_THROW(ReadBinary(ss), ParseError);
}

TEST(TraceIo, BinaryRejectsTruncated) {
  std::stringstream ss;
  WriteBinary(ss, SampleRecords());
  std::string data = ss.str();
  data.resize(data.size() - 4);
  std::stringstream truncated(data);
  EXPECT_THROW(ReadBinary(truncated), ParseError);
}

TEST(TraceIo, RamulatorImportStampsCycles) {
  std::stringstream ss("0x100 R\n0x200 W\n0x300 READ\n");
  const auto records = ReadRamulatorTrace(ss, 4);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].cycle, 0u);
  EXPECT_EQ(records[1].cycle, 4u);
  EXPECT_EQ(records[2].cycle, 8u);
  EXPECT_EQ(records[1].address, 0x200u);
  EXPECT_TRUE(records[1].is_write);
  EXPECT_FALSE(records[2].is_write);
}

TEST(TraceIo, RamulatorImportRejectsMalformed) {
  std::stringstream bad_op("0x100 X\n");
  EXPECT_THROW(ReadRamulatorTrace(bad_op, 4), ParseError);
  std::stringstream bad_addr("zzz R\n");
  EXPECT_THROW(ReadRamulatorTrace(bad_addr, 4), ParseError);
  std::stringstream ok("0x1 R\n");
  EXPECT_THROW(ReadRamulatorTrace(ok, 0), ParseError);
}

TEST(TraceIo, RamulatorImportSkipsComments) {
  std::stringstream ss("# ramulator trace\n\n0x10 W\n");
  const auto records = ReadRamulatorTrace(ss, 2);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].is_write);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = "/tmp/vrl_trace_test.txt";
  WriteTextFile(path, SampleRecords());
  const auto back = ReadTextFile(path);
  EXPECT_EQ(back.size(), 3u);
  EXPECT_THROW(ReadTextFile("/nonexistent/dir/file.txt"), ParseError);
}

// ---------------------------------------------------------------------------
// Synthetic generator
// ---------------------------------------------------------------------------

TEST(Synthetic, GeneratesSortedTraceWithinDuration) {
  Rng rng(1);
  SyntheticWorkloadParams params;
  params.mean_gap_cycles = 50.0;
  const auto records = GenerateTrace(params, SmallGeometry(), 100000, rng);
  EXPECT_GT(records.size(), 1000u);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_GE(records[i].cycle, records[i - 1].cycle);
  }
  EXPECT_LT(records.back().cycle, 100000u);
}

TEST(Synthetic, IsDeterministicPerSeed) {
  Rng rng_a(9);
  Rng rng_b(9);
  SyntheticWorkloadParams params;
  const auto a = GenerateTrace(params, SmallGeometry(), 50000, rng_a);
  const auto b = GenerateTrace(params, SmallGeometry(), 50000, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].address, b[i].address);
    EXPECT_EQ(a[i].cycle, b[i].cycle);
  }
}

TEST(Synthetic, RespectsFootprint) {
  Rng rng(2);
  SyntheticWorkloadParams params;
  params.footprint_fraction = 0.25;
  params.sequential_prob = 0.0;
  const auto geometry = SmallGeometry();
  const auto records = GenerateTrace(params, geometry, 200000, rng);
  const auto limit = static_cast<std::uint64_t>(
      0.25 * static_cast<double>(geometry.TotalLines()));
  for (const auto& r : records) {
    EXPECT_LT(r.address, limit);
  }
}

TEST(Synthetic, WriteFractionApproximatelyRespected) {
  Rng rng(3);
  SyntheticWorkloadParams params;
  params.write_fraction = 0.4;
  params.mean_gap_cycles = 10.0;
  const auto records = GenerateTrace(params, SmallGeometry(), 400000, rng);
  const auto stats = ComputeStats(records, SmallGeometry());
  EXPECT_NEAR(stats.WriteFraction(), 0.4, 0.02);
}

TEST(Synthetic, IntensityMatchesMeanGap) {
  Rng rng(4);
  SyntheticWorkloadParams params;
  params.mean_gap_cycles = 100.0;
  const auto records = GenerateTrace(params, SmallGeometry(), 1000000, rng);
  EXPECT_NEAR(static_cast<double>(records.size()), 10000.0, 500.0);
}

TEST(Synthetic, PhasesWidenRowCoverage) {
  // A small footprint that migrates eventually touches much more of the
  // address space than a static one.
  Rng rng_a(8);
  Rng rng_b(8);
  SyntheticWorkloadParams stationary;
  stationary.footprint_fraction = 0.1;
  stationary.mean_gap_cycles = 20.0;
  SyntheticWorkloadParams phased = stationary;
  phased.phase_cycles = 50000;

  const auto geometry = SmallGeometry();
  const auto a = GenerateTrace(stationary, geometry, 800000, rng_a);
  const auto b = GenerateTrace(phased, geometry, 800000, rng_b);
  EXPECT_GT(ComputeStats(b, geometry).RowCoverage(),
            2.0 * ComputeStats(a, geometry).RowCoverage());
}

TEST(Synthetic, PhasedAddressesStayInBounds) {
  Rng rng(9);
  SyntheticWorkloadParams params;
  params.footprint_fraction = 0.9;
  params.phase_cycles = 10000;
  const auto geometry = SmallGeometry();
  const auto records = GenerateTrace(params, geometry, 300000, rng);
  for (const auto& r : records) {
    EXPECT_LT(r.address, geometry.TotalLines());
  }
}

TEST(Synthetic, RejectsBadParams) {
  Rng rng(5);
  SyntheticWorkloadParams params;
  params.footprint_fraction = 0.0;
  EXPECT_THROW(GenerateTrace(params, SmallGeometry(), 1000, rng), ConfigError);
  params = SyntheticWorkloadParams{};
  params.mean_gap_cycles = 0.5;
  EXPECT_THROW(GenerateTrace(params, SmallGeometry(), 1000, rng), ConfigError);
  params = SyntheticWorkloadParams{};
  params.sequential_prob = 1.5;
  EXPECT_THROW(GenerateTrace(params, SmallGeometry(), 1000, rng), ConfigError);
}

TEST(Synthetic, SuiteHasFourteenWorkloads) {
  const auto suite = EvaluationSuite();
  EXPECT_EQ(suite.size(), 14u);
  for (const auto& w : suite) {
    EXPECT_NO_THROW(w.Validate());
  }
}

TEST(Synthetic, SuiteLookupByName) {
  const auto bgsave = SuiteWorkload("bgsave");
  EXPECT_DOUBLE_EQ(bgsave.footprint_fraction, 1.0);
  EXPECT_THROW(SuiteWorkload("no-such-workload"), ConfigError);
}

TEST(Synthetic, BgsaveCoversMoreRowsThanSwaptions) {
  // The workload axis that matters for VRL-Access.
  Rng rng(6);
  const auto geometry = SmallGeometry();
  const auto bgsave =
      GenerateTrace(SuiteWorkload("bgsave"), geometry, 500000, rng);
  const auto swaptions =
      GenerateTrace(SuiteWorkload("swaptions"), geometry, 500000, rng);
  const auto cover_bg = ComputeStats(bgsave, geometry).RowCoverage();
  const auto cover_sw = ComputeStats(swaptions, geometry).RowCoverage();
  EXPECT_GT(cover_bg, 2.0 * cover_sw);
}

// ---------------------------------------------------------------------------
// TraceStats
// ---------------------------------------------------------------------------

TEST(Stats, EmptyTrace) {
  const auto stats = ComputeStats({}, SmallGeometry());
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_DOUBLE_EQ(stats.WriteFraction(), 0.0);
  EXPECT_DOUBLE_EQ(stats.RowCoverage(), 0.0);
}

TEST(Stats, CountsUniqueRows) {
  const AddressMapper mapper(SmallGeometry());
  std::vector<TraceRecord> records;
  // Two distinct rows in bank 0, one accessed twice.
  records.push_back({0, mapper.Encode({0, 3, 0}), false});
  records.push_back({5, mapper.Encode({0, 3, 1}), false});
  records.push_back({9, mapper.Encode({0, 4, 0}), true});
  const auto stats = ComputeStats(records, SmallGeometry());
  EXPECT_EQ(stats.unique_rows, 2u);
  EXPECT_EQ(stats.span_cycles, 9u);
  EXPECT_EQ(stats.writes, 1u);
}

}  // namespace
}  // namespace vrl::trace
