// Property-based tests of the DRAM substrate: scheduling-policy invariants
// swept over MPRSF values, refresh-rate conservation between policies, and
// controller accounting identities under arbitrary traffic.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "common/rng.hpp"
#include "dram/bank.hpp"
#include "dram/controller.hpp"
#include "dram/refresh_policy.hpp"
#include "dram/scheduler.hpp"
#include "retention/profile.hpp"

namespace vrl::dram {
namespace {

retention::BinningResult UniformBinning(std::size_t rows, double retention) {
  const retention::RetentionProfile profile(
      std::vector<double>(rows, retention));
  return retention::BinRows(profile, retention::StandardBinPeriods());
}

// ---------------------------------------------------------------------------
// VRL policy: the long-run partial fraction equals mprsf/(mprsf+1)
// ---------------------------------------------------------------------------

class VrlFractionProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VrlFractionProperty, SteadyStatePartialShare) {
  const std::size_t mprsf = GetParam();
  const std::size_t rows = 64;
  const auto binning = UniformBinning(rows, 1.0);
  const auto plan = MakeRefreshPlan(binning, 2.5e-9,
                                    std::vector<std::size_t>(rows, mprsf));
  VrlPolicy policy(plan, 26, 15);

  std::size_t fulls = 0;
  std::size_t partials = 0;
  const Cycles period = plan.period_cycles[0];
  const std::size_t super_cycles = 30;
  for (Cycles t = 0; t < super_cycles * (mprsf + 1) * period; t += period / 8) {
    for (const auto& op : policy.CollectDue(t)) {
      (op.is_full ? fulls : partials) += 1;
    }
  }
  ASSERT_GT(fulls, 0u);
  const double share = static_cast<double>(partials) /
                       static_cast<double>(fulls + partials);
  const double expected = static_cast<double>(mprsf) /
                          static_cast<double>(mprsf + 1);
  EXPECT_NEAR(share, expected, 0.02) << "mprsf=" << mprsf;
}

INSTANTIATE_TEST_SUITE_P(MprsfValues, VrlFractionProperty,
                         ::testing::Values(std::size_t{0}, std::size_t{1},
                                           std::size_t{2}, std::size_t{3},
                                           std::size_t{5}, std::size_t{7}));

// ---------------------------------------------------------------------------
// RAIDR and VRL issue the same refresh *count* for the same plan
// ---------------------------------------------------------------------------

class CountConservation : public ::testing::TestWithParam<double> {};

TEST_P(CountConservation, VrlChangesLatencyNotCount) {
  const double retention = GetParam();
  const std::size_t rows = 128;
  const auto binning = UniformBinning(rows, retention);
  const auto plan_raidr = MakeRefreshPlan(binning, 2.5e-9);
  const auto plan_vrl = MakeRefreshPlan(binning, 2.5e-9,
                                        std::vector<std::size_t>(rows, 2));
  RaidrPolicy raidr(plan_raidr, 26);
  VrlPolicy vrl(plan_vrl, 26, 15);

  std::size_t raidr_ops = 0;
  std::size_t vrl_ops = 0;
  Cycles vrl_cycles = 0;
  Cycles raidr_cycles = 0;
  const Cycles horizon = 16 * 25'600'000;
  for (Cycles t = 0; t <= horizon; t += 3120) {
    for (const auto& op : raidr.CollectDue(t)) {
      ++raidr_ops;
      raidr_cycles += op.trfc;
    }
    for (const auto& op : vrl.CollectDue(t)) {
      ++vrl_ops;
      vrl_cycles += op.trfc;
    }
  }
  EXPECT_EQ(raidr_ops, vrl_ops);
  EXPECT_LT(vrl_cycles, raidr_cycles);
}

INSTANTIATE_TEST_SUITE_P(Retentions, CountConservation,
                         ::testing::Values(0.07, 0.13, 0.2, 0.5, 3.0));

// ---------------------------------------------------------------------------
// Controller accounting identities under random traffic
// ---------------------------------------------------------------------------

struct TrafficCase {
  std::size_t banks;
  std::size_t requests;
  SchedulerKind scheduler;
};

class ControllerAccounting : public ::testing::TestWithParam<TrafficCase> {};

TEST_P(ControllerAccounting, InvariantsHold) {
  const TrafficCase c = GetParam();
  const std::size_t rows = 64;
  TimingParams timing;
  timing.t_refi = 2000;
  timing.t_refw = 128000;

  MemoryController controller(
      c.banks, rows, timing,
      [&]() {
        return std::make_unique<JedecPolicy>(rows, timing.t_refw, 26);
      },
      c.scheduler);

  Rng rng(c.requests * 31 + c.banks);
  std::vector<Request> requests;
  Cycles t = 0;
  for (std::size_t i = 0; i < c.requests; ++i) {
    t += rng.UniformInt(200);
    Request r;
    r.arrival = t;
    r.bank = rng.UniformInt(c.banks);
    r.row = rng.UniformInt(rows);
    r.type = rng.Bernoulli(0.5) ? RequestType::kWrite : RequestType::kRead;
    requests.push_back(r);
  }

  const Cycles horizon = 4 * timing.t_refw;
  const auto stats = controller.Run(requests, horizon);

  // Every request is serviced exactly once.
  std::size_t in_horizon = 0;
  for (const auto& r : requests) {
    in_horizon += r.arrival <= horizon ? 1 : 0;
  }
  EXPECT_EQ(stats.TotalReads() + stats.TotalWrites(), in_horizon);

  // Hits + misses == accesses.
  EXPECT_EQ(stats.TotalRowHits() + stats.TotalRowMisses(), in_horizon);

  // Refresh busy cycles == ops * tRFC for a single-latency policy.
  EXPECT_EQ(stats.TotalRefreshBusyCycles(),
            stats.TotalFullRefreshes() * 26);
  EXPECT_EQ(stats.TotalPartialRefreshes(), 0u);

  // The simulation horizon covers the last completion.
  EXPECT_GE(stats.simulated_cycles, horizon);
}

INSTANTIATE_TEST_SUITE_P(
    Traffic, ControllerAccounting,
    ::testing::Values(TrafficCase{1, 0, SchedulerKind::kFcfs},
                      TrafficCase{1, 500, SchedulerKind::kFcfs},
                      TrafficCase{4, 2000, SchedulerKind::kFcfs},
                      TrafficCase{4, 2000, SchedulerKind::kFrFcfs},
                      TrafficCase{8, 5000, SchedulerKind::kFrFcfs}));

// ---------------------------------------------------------------------------
// Refresh burst capping (REF postponement)
// ---------------------------------------------------------------------------

class BurstCapProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BurstCapProperty, PostponedOpsAreNeverDropped) {
  const std::size_t cap = GetParam();
  const std::size_t rows = 128;
  const auto binning = UniformBinning(rows, 0.07);  // everyone in 64ms bin
  const auto plan_a = MakeRefreshPlan(binning, 2.5e-9);
  const auto plan_b = plan_a;

  RaidrPolicy uncapped(plan_a, 26);
  RaidrPolicy capped(plan_b, 26);
  capped.set_max_ops_per_tick(cap);
  EXPECT_EQ(capped.max_ops_per_tick(), cap);

  std::size_t ops_uncapped = 0;
  std::size_t ops_capped = 0;
  const Cycles horizon = 8 * 25'600'000;
  for (Cycles t = 0; t <= horizon; t += 3120) {
    ops_uncapped += uncapped.CollectDue(t).size();
    const auto batch = capped.CollectDue(t);
    if (cap != 0) {
      EXPECT_LE(batch.size(), cap);
    }
    ops_capped += batch.size();
  }
  // Postponement delays ops but conserves them (modulo the trailing ticks
  // still draining at the horizon).
  EXPECT_NEAR(static_cast<double>(ops_capped),
              static_cast<double>(ops_uncapped),
              static_cast<double>(cap == 0 ? 0 : 2 * rows));
}

INSTANTIATE_TEST_SUITE_P(Caps, BurstCapProperty,
                         ::testing::Values(std::size_t{0}, std::size_t{1},
                                           std::size_t{2}, std::size_t{8}));

TEST(BurstCap, DeferredRowsComeFirstNextTick) {
  const std::size_t rows = 4;
  const auto binning = UniformBinning(rows, 0.07);
  const auto plan = MakeRefreshPlan(binning, 2.5e-9);
  RaidrPolicy policy(plan, 26);
  policy.set_max_ops_per_tick(1);

  // Jump past everyone's first deadline: all 4 rows are due, but each tick
  // emits exactly one, in deadline order.
  const Cycles late = plan.period_cycles[0] + 10;
  std::vector<std::size_t> order;
  for (int tick = 0; tick < 4; ++tick) {
    const auto ops = policy.CollectDue(late + static_cast<Cycles>(tick));
    ASSERT_EQ(ops.size(), 1u);
    order.push_back(ops[0].row);
  }
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));
}

// ---------------------------------------------------------------------------
// Scheduler selection properties
// ---------------------------------------------------------------------------

TEST(SchedulerSelect, FcfsAlwaysPicksOldest) {
  std::vector<Request> pending(3);
  pending[0].row = 9;
  pending[1].row = 5;
  pending[2].row = 5;
  EXPECT_EQ(SelectNextRequest(SchedulerKind::kFcfs, pending, 5), 0u);
}

TEST(SchedulerSelect, FrFcfsPrefersOldestRowHit) {
  std::vector<Request> pending(3);
  pending[0].row = 9;
  pending[1].row = 5;
  pending[2].row = 5;
  EXPECT_EQ(SelectNextRequest(SchedulerKind::kFrFcfs, pending, 5), 1u);
}

TEST(SchedulerSelect, FrFcfsFallsBackToOldest) {
  std::vector<Request> pending(2);
  pending[0].row = 9;
  pending[1].row = 5;
  EXPECT_EQ(SelectNextRequest(SchedulerKind::kFrFcfs, pending, 7), 0u);
  EXPECT_EQ(SelectNextRequest(SchedulerKind::kFrFcfs, pending, std::nullopt),
            0u);
}

TEST(SchedulerSelect, RejectsEmptyPending) {
  EXPECT_THROW(SelectNextRequest(SchedulerKind::kFcfs, {}, std::nullopt),
               ConfigError);
}

TEST(SchedulerSelect, NamesAreDistinct) {
  EXPECT_NE(SchedulerName(SchedulerKind::kFcfs),
            SchedulerName(SchedulerKind::kFrFcfs));
}

// ---------------------------------------------------------------------------
// Controller invariants across the full organization grid
// ---------------------------------------------------------------------------

struct OrganizationCase {
  SchedulerKind scheduler;
  RowBufferPolicy page;
  std::size_t subarrays;
};

class OrganizationProperty : public ::testing::TestWithParam<OrganizationCase> {
};

TEST_P(OrganizationProperty, AccountingHoldsForVrlPolicy) {
  const OrganizationCase c = GetParam();
  const std::size_t rows = 64;
  TimingParams timing;
  timing.t_refi = 2000;
  timing.t_refw = 128000;

  const auto binning = UniformBinning(rows, 1.0);
  const auto plan = MakeRefreshPlan(binning, 2.5e-9,
                                    std::vector<std::size_t>(rows, 2));
  MemoryController controller(
      2, rows, timing,
      [&]() { return std::make_unique<VrlPolicy>(plan, 26, 15); },
      c.scheduler, c.page, c.subarrays);

  Rng rng(77);
  std::vector<Request> requests;
  Cycles t = 0;
  for (int i = 0; i < 1500; ++i) {
    t += rng.UniformInt(120);
    Request r;
    r.arrival = t;
    r.bank = rng.UniformInt(2);
    r.row = rng.UniformInt(rows);
    r.type = rng.Bernoulli(0.4) ? RequestType::kWrite : RequestType::kRead;
    requests.push_back(r);
  }

  const Cycles horizon = 4 * timing.t_refw;
  const auto stats = controller.Run(requests, horizon);

  std::size_t in_horizon = 0;
  for (const auto& r : requests) {
    in_horizon += r.arrival <= horizon ? 1 : 0;
  }
  EXPECT_EQ(stats.TotalReads() + stats.TotalWrites(), in_horizon);
  EXPECT_EQ(stats.TotalRowHits() + stats.TotalRowMisses(), in_horizon);
  // Mixed-latency accounting: busy cycles = fulls*26 + partials*15.
  EXPECT_EQ(stats.TotalRefreshBusyCycles(),
            stats.TotalFullRefreshes() * 26 +
                stats.TotalPartialRefreshes() * 15);
  EXPECT_GT(stats.TotalPartialRefreshes(), 0u);
  // Closed-page never records row hits.
  if (c.page == RowBufferPolicy::kClosedPage) {
    EXPECT_EQ(stats.TotalRowHits(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Organizations, OrganizationProperty,
    ::testing::Values(
        OrganizationCase{SchedulerKind::kFcfs, RowBufferPolicy::kOpenPage, 1},
        OrganizationCase{SchedulerKind::kFrFcfs, RowBufferPolicy::kOpenPage,
                         1},
        OrganizationCase{SchedulerKind::kFcfs, RowBufferPolicy::kClosedPage,
                         1},
        OrganizationCase{SchedulerKind::kFcfs, RowBufferPolicy::kOpenPage, 4},
        OrganizationCase{SchedulerKind::kFrFcfs, RowBufferPolicy::kOpenPage,
                         8},
        OrganizationCase{SchedulerKind::kFrFcfs, RowBufferPolicy::kClosedPage,
                         4}));

// ---------------------------------------------------------------------------
// FR-FCFS end-to-end: never worse than FCFS on average latency
// ---------------------------------------------------------------------------

class SchedulerComparison : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerComparison, FrFcfsDoesNotHurtThroughput) {
  const std::size_t rows = 64;
  TimingParams timing;
  timing.t_refi = 2000;
  timing.t_refw = 128000;

  // Two interleaved sequential streams at high intensity.
  Rng rng(GetParam());
  std::vector<Request> requests;
  Cycles t = 0;
  std::size_t rowA = 3;
  std::size_t rowB = 40;
  for (int i = 0; i < 4000; ++i) {
    t += 1 + rng.UniformInt(30);
    Request r;
    r.arrival = t;
    r.bank = 0;
    r.row = rng.Bernoulli(0.5) ? rowA : rowB;
    requests.push_back(r);
    if (i % 50 == 49) {
      rowA = (rowA + 1) % rows;  // streams drift slowly
      rowB = (rowB + 1) % rows;
    }
  }

  const auto run = [&](SchedulerKind kind) {
    MemoryController controller(
        1, rows, timing,
        [&]() {
          return std::make_unique<JedecPolicy>(rows, timing.t_refw, 26);
        },
        kind);
    return controller.Run(requests, 2 * timing.t_refw);
  };

  const auto fcfs = run(SchedulerKind::kFcfs);
  const auto frfcfs = run(SchedulerKind::kFrFcfs);
  EXPECT_LE(frfcfs.AverageRequestLatency(),
            fcfs.AverageRequestLatency() + 1e-9);
  EXPECT_GE(frfcfs.TotalRowHits(), fcfs.TotalRowHits());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerComparison,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace vrl::dram
