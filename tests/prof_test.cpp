// Tests for the continuous-profiling plane (src/prof/, docs/PROFILING.md):
// attribution-tree construction, RAII unwinding through exceptions, drop
// accounting at the node/depth caps, shard Absorb determinism (the
// evaluation suite's tree is byte-identical at any thread count once
// times are scrubbed), the sampled PhaseAccumulator, the exporters, the
// /profile endpoint over a real loopback socket mid-campaign, and a
// scripts/diff_profile.py round-trip on a golden export pair.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/error.hpp"
#include "core/experiments.hpp"
#include "core/vrl_system.hpp"
#include "fault/injector.hpp"
#include "obs/monitor_server.hpp"
#include "obs/plane.hpp"
#include "prof/profiler.hpp"
#include "prof/report.hpp"
#include "retention/vrt.hpp"
#include "telemetry/recorder.hpp"

namespace vrl::prof {
namespace {

// -- Helpers ------------------------------------------------------------------

std::string TempPath(const std::string& name) {
  return testing::TempDir() + name;
}

std::string JsonOf(const Profiler& profiler, bool scrub = true) {
  std::ostringstream os;
  WriteProfileJson(os, profiler.Snapshot(scrub));
  return os.str();
}

std::uint64_t TotalCalls(const ProfileSnapshot& snapshot) {
  std::uint64_t total = 0;
  for (const ProfileNode& node : snapshot.nodes) {
    total += node.calls;
  }
  return total;
}

const ProfileNode* FindNode(const ProfileSnapshot& snapshot,
                            const std::string& path) {
  for (std::size_t i = 0; i < snapshot.nodes.size(); ++i) {
    if (snapshot.PathOf(i) == path) {
      return &snapshot.nodes[i];
    }
  }
  return nullptr;
}

std::string BodyOf(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string() : response.substr(split + 4);
}

int StatusOf(const std::string& response) {
  return std::stoi(response.substr(response.find(' ') + 1));
}

/// A real GET over loopback — the same path curl takes in CI.
std::string HttpGet(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect to 127.0.0.1:" << port << " failed";
    return {};
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t wrote =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (wrote <= 0) {
      break;
    }
    sent += static_cast<std::size_t>(wrote);
  }
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) {
      break;
    }
    response.append(chunk, static_cast<std::size_t>(got));
  }
  ::close(fd);
  return response;
}

/// Exit status of a shell command (-1 when it could not run).
int RunCommand(const std::string& command) {
  const int status = std::system(command.c_str());
  if (status == -1 || !WIFEXITED(status)) {
    return -1;
  }
  return WEXITSTATUS(status);
}

// -- Tree construction --------------------------------------------------------

TEST(Profiler, BuildsTreeKeyedByParentAndName) {
  Profiler profiler;
  {
    ScopedPhase outer(&profiler, "run");
    { ScopedPhase inner(&profiler, "step"); }
    { ScopedPhase inner(&profiler, "step"); }
  }
  {
    ScopedPhase other(&profiler, "other");
    ScopedPhase inner(&profiler, "step");
  }
  const auto snapshot = profiler.Snapshot();
  ASSERT_EQ(snapshot.nodes.size(), 4u);
  // "step" under "run" and "step" under "other" are distinct nodes.
  const ProfileNode* run_step = FindNode(snapshot, "run;step");
  const ProfileNode* other_step = FindNode(snapshot, "other;step");
  ASSERT_NE(run_step, nullptr);
  ASSERT_NE(other_step, nullptr);
  EXPECT_EQ(run_step->calls, 2u);
  EXPECT_EQ(other_step->calls, 1u);
  EXPECT_EQ(FindNode(snapshot, "run")->calls, 1u);
  // Every parent precedes its children, and depths chain.
  for (std::size_t i = 0; i < snapshot.nodes.size(); ++i) {
    const ProfileNode& node = snapshot.nodes[i];
    if (node.parent >= 0) {
      EXPECT_LT(static_cast<std::size_t>(node.parent), i);
      EXPECT_EQ(node.depth,
                snapshot.nodes[static_cast<std::size_t>(node.parent)].depth +
                    1);
    } else {
      EXPECT_EQ(node.depth, 0u);
    }
    EXPECT_LE(node.exclusive_s, node.inclusive_s + 1e-12);
  }
  EXPECT_EQ(snapshot.frames, TotalCalls(snapshot));
  EXPECT_EQ(snapshot.frames, 5u);
  EXPECT_EQ(snapshot.drops, 0u);
  EXPECT_EQ(profiler.open_depth(), 0u);
}

TEST(Profiler, ScopedPhaseUnwindsThroughExceptions) {
  Profiler profiler;
  try {
    ScopedPhase outer(&profiler, "run");
    ScopedPhase inner(&profiler, "step");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(profiler.open_depth(), 0u);
  EXPECT_EQ(profiler.frames(), 2u);
  // Null profiler: ScopedPhase is a no-op, usable unconditionally.
  { ScopedPhase nothing(nullptr, "ignored"); }
}

TEST(Profiler, UnitsAttributeToTheClosingFrame) {
  Profiler profiler;
  {
    ScopedPhase frame(&profiler, "refresh");
    frame.AddUnits(32);
    frame.AddUnits(10);
  }
  const auto snapshot = profiler.Snapshot();
  EXPECT_EQ(FindNode(snapshot, "refresh")->units, 42u);
}

TEST(Profiler, CompletePhaseAttachesUnderTheOpenFrame) {
  Profiler profiler;
  profiler.BeginPhase("run");
  profiler.CompletePhase("ticks", 0.25, 1000, 5000);
  profiler.EndPhase();
  const auto snapshot = profiler.Snapshot();
  const ProfileNode* ticks = FindNode(snapshot, "run;ticks");
  ASSERT_NE(ticks, nullptr);
  EXPECT_EQ(ticks->calls, 1000u);
  EXPECT_EQ(ticks->units, 5000u);
  EXPECT_DOUBLE_EQ(ticks->inclusive_s, 0.25);
  EXPECT_DOUBLE_EQ(ticks->exclusive_s, 0.25);
  // The folded time counts as child time of the enclosing frame.
  const ProfileNode* run = FindNode(snapshot, "run");
  EXPECT_LE(run->exclusive_s, run->inclusive_s + 1e-12);
  EXPECT_EQ(snapshot.frames, 1001u);
  // Without an open frame it lands as a root.
  profiler.CompletePhase("standalone", 0.1, 2);
  EXPECT_NE(FindNode(profiler.Snapshot(), "standalone"), nullptr);
}

// -- Drop accounting ----------------------------------------------------------

TEST(Profiler, DepthCapDropsStayBalanced) {
  ProfilerOptions options;
  options.max_depth = 2;
  Profiler profiler(options);
  {
    ScopedPhase a(&profiler, "a");
    ScopedPhase b(&profiler, "b");
    ScopedPhase c(&profiler, "c");  // over the cap: dropped
    ScopedPhase d(&profiler, "d");  // child of a dropped frame: dropped
  }
  EXPECT_EQ(profiler.open_depth(), 0u);  // sentinels unwound cleanly
  EXPECT_EQ(profiler.frames(), 2u);
  EXPECT_EQ(profiler.drops(), 2u);
  const auto snapshot = profiler.Snapshot();
  EXPECT_EQ(snapshot.nodes.size(), 2u);
  EXPECT_EQ(snapshot.frames, TotalCalls(snapshot));
}

TEST(Profiler, NodeCapDropsNewPhasesButKeepsExisting) {
  ProfilerOptions options;
  options.max_nodes = 2;
  Profiler profiler(options);
  { ScopedPhase a(&profiler, "a"); }
  { ScopedPhase b(&profiler, "b"); }
  { ScopedPhase c(&profiler, "c"); }  // over the node cap
  { ScopedPhase a(&profiler, "a"); }  // existing node still records
  profiler.CompletePhase("d", 0.1, 7);  // folded calls drop too
  EXPECT_EQ(profiler.frames(), 3u);
  EXPECT_EQ(profiler.drops(), 8u);
  const auto snapshot = profiler.Snapshot();
  EXPECT_EQ(snapshot.nodes.size(), 2u);
  EXPECT_EQ(FindNode(snapshot, "a")->calls, 2u);
  EXPECT_EQ(snapshot.frames, TotalCalls(snapshot));
}

// -- Absorb -------------------------------------------------------------------

TEST(Profiler, AbsorbMergesByPathAndKeepsInvariants) {
  Profiler a;
  {
    ScopedPhase run(&a, "run");
    ScopedPhase step(&a, "step");
  }
  Profiler b;
  {
    ScopedPhase run(&b, "run");
    { ScopedPhase step(&b, "step"); }
    { ScopedPhase extra(&b, "extra"); }
  }
  a.Absorb(b);
  const auto snapshot = a.Snapshot();
  EXPECT_EQ(FindNode(snapshot, "run")->calls, 2u);
  EXPECT_EQ(FindNode(snapshot, "run;step")->calls, 2u);
  EXPECT_EQ(FindNode(snapshot, "run;extra")->calls, 1u);
  EXPECT_EQ(snapshot.frames, TotalCalls(snapshot));
  EXPECT_EQ(snapshot.frames, 5u);
}

TEST(Profiler, AbsorbRejectsOpenFrames) {
  Profiler open;
  open.BeginPhase("run");
  Profiler closed;
  EXPECT_THROW(closed.Absorb(open), ConfigError);
  EXPECT_THROW(open.Absorb(closed), ConfigError);
  open.EndPhase();
  closed.Absorb(open);  // balanced now: fine
  EXPECT_EQ(closed.frames(), 1u);
}

TEST(Profiler, AbsorbIsDeterministicRegardlessOfShardSplit) {
  // The same work recorded serially or split across two shards (merged in
  // index order) exports byte-identical scrubbed trees.
  const auto record = [](Profiler& p, int task) {
    ScopedPhase run(&p, "run");
    ScopedPhase step(&p, "step");
    step.AddUnits(static_cast<std::uint64_t>(task) + 1);
  };
  Profiler serial;
  for (int task = 0; task < 4; ++task) {
    record(serial, task);
  }
  Profiler shard0, shard1, merged;
  for (int task = 0; task < 4; ++task) {
    record(task % 2 == 0 ? shard0 : shard1, task);
  }
  merged.Absorb(shard0);
  merged.Absorb(shard1);
  EXPECT_EQ(JsonOf(merged), JsonOf(serial));
}

// -- PhaseAccumulator ---------------------------------------------------------

TEST(PhaseAccumulator, CountsEveryCallTimesOneInN) {
  PhaseAccumulator acc(4);
  int timed = 0;
  for (int i = 0; i < 16; ++i) {
    if (acc.Sample()) {
      ++timed;
      acc.Add(0.5);
    }
  }
  EXPECT_EQ(acc.calls(), 16u);
  EXPECT_EQ(timed, 4);  // calls 0, 4, 8, 12
  // 4 samples x 0.5 s scaled back up to 16 calls.
  EXPECT_DOUBLE_EQ(acc.EstimatedSeconds(), 8.0);
  acc.AddUnits(100);
  EXPECT_EQ(acc.units(), 100u);
  EXPECT_DOUBLE_EQ(PhaseAccumulator().EstimatedSeconds(), 0.0);
}

// -- Exporters ----------------------------------------------------------------

TEST(ProfileReport, JsonAndCollapsedAreDeterministicWhenScrubbed) {
  Profiler profiler;
  {
    ScopedPhase run(&profiler, "run");
    ScopedPhase step(&profiler, "step");
    step.AddUnits(3);
  }
  const std::string json = JsonOf(profiler);
  EXPECT_NE(json.find("\"schema\":\"vrl.profile.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"run;step\""), std::string::npos);
  EXPECT_NE(json.find("\"frames\":2"), std::string::npos);
  // Scrubbed exports are byte-stable across runs of the same workload.
  Profiler again;
  {
    ScopedPhase run(&again, "run");
    ScopedPhase step(&again, "step");
    step.AddUnits(3);
  }
  EXPECT_EQ(JsonOf(again), json);
  // Scrubbed collapsed stacks weight by calls so flamegraphs still render.
  std::ostringstream collapsed;
  WriteCollapsedStacks(collapsed, profiler.Snapshot(/*scrub_times=*/true));
  EXPECT_NE(collapsed.str().find("run;step 1\n"), std::string::npos);

  std::ostringstream text;
  WriteProfileText(text, profiler.Snapshot());
  EXPECT_NE(text.str().find("phase profile"), std::string::npos);
  EXPECT_NE(text.str().find("step"), std::string::npos);
}

TEST(ProfileReport, ScrubZeroesTimesButKeepsCounts) {
  Profiler profiler;
  { ScopedPhase run(&profiler, "run"); }
  const auto scrubbed = profiler.Snapshot(/*scrub_times=*/true);
  EXPECT_EQ(scrubbed.nodes[0].calls, 1u);
  EXPECT_EQ(scrubbed.nodes[0].inclusive_s, 0.0);
  EXPECT_EQ(scrubbed.nodes[0].exclusive_s, 0.0);
  const auto raw = profiler.Snapshot();
  EXPECT_GT(raw.nodes[0].inclusive_s, 0.0);
}

// -- Determinism across thread counts (acceptance criterion) ------------------

TEST(ProfDeterminism, EvaluationSuiteTreeIsByteIdenticalAcrossThreads) {
  core::VrlConfig config;
  config.banks = 1;
  const core::VrlSystem system(config);

  std::string reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    telemetry::RecorderOptions recorder_options;
    recorder_options.profile_phases = true;
    telemetry::Recorder sink(recorder_options);
    core::ExperimentOptions options;
    options.windows = 2;
    options.threads = threads;
    options.telemetry = &sink;
    const auto results = core::RunEvaluationSuite(system, options);
    EXPECT_FALSE(results.empty());
    ASSERT_NE(sink.profiler(), nullptr);
    std::ostringstream os;
    WriteProfileJson(os, sink.profiler()->Snapshot(/*scrub_times=*/true));
    const std::string bytes = os.str();
    EXPECT_GT(sink.profiler()->frames(), 0u);
    if (threads == 1) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "diverged at " << threads << " threads";
    }
  }
}

// -- /profile endpoint over a real socket -------------------------------------

TEST(ProfileEndpoint, Returns404UntilAProfilingRecorderPublishes) {
  obs::MonitorServer server;
  ASSERT_GT(server.port(), 0);
  telemetry::Recorder plain;  // no profiler attached
  plain.counter("ops").Add(1);
  server.Publish(plain);
  EXPECT_EQ(StatusOf(HttpGet(server.port(), "/profile")), 404);

  telemetry::RecorderOptions recorder_options;
  recorder_options.profile_phases = true;
  telemetry::Recorder profiled(recorder_options);
  { ScopedPhase run(profiled.profiler(), "run"); }
  server.Publish(profiled);
  const std::string response = HttpGet(server.port(), "/profile");
  EXPECT_EQ(StatusOf(response), 200);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  EXPECT_NE(BodyOf(response).find("\"schema\":\"vrl.profile.v1\""),
            std::string::npos);
}

TEST(ProfileEndpoint, ServesLiveTreeMidCampaignWithSelfObservability) {
  obs::PlaneOptions plane_options;
  plane_options.serve = true;
  obs::MonitorPlane plane(plane_options);
  ASSERT_NE(plane.server(), nullptr);
  const int port = plane.server()->port();

  core::VrlConfig config;
  config.banks = 1;
  const core::VrlSystem system(config);
  telemetry::RecorderOptions recorder_options;
  recorder_options.profile_phases = true;
  telemetry::Recorder recorder(recorder_options);
  fault::FaultSchedule faults(0xFA11ULL);
  retention::VrtParams vrt;
  faults.Add(std::make_unique<fault::VrtFlipInjector>(vrt));

  std::string mid_run_profile;
  std::string mid_run_collapsed;
  core::FaultCampaignOptions options;
  options.windows = 4;
  options.adaptive = true;
  options.telemetry = &recorder;
  options.on_window = [&](std::size_t windows_done, Cycles) {
    plane.Sample(recorder);
    if (windows_done == 2) {
      // The "curl /profile during a running campaign" moment.
      mid_run_profile = HttpGet(port, "/profile");
      mid_run_collapsed = HttpGet(port, "/profile?format=collapsed");
    }
  };
  system.RunFaultCampaign(core::PolicyKind::kVrl, faults, options);
  plane.Sample(recorder);

  ASSERT_FALSE(mid_run_profile.empty());
  EXPECT_EQ(StatusOf(mid_run_profile), 200);
  const std::string body = BodyOf(mid_run_profile);
  EXPECT_NE(body.find("\"schema\":\"vrl.profile.v1\""), std::string::npos);
  // The campaign frame is open mid-run; its node is already in the tree.
  EXPECT_NE(body.find("\"name\":\"campaign.run\""), std::string::npos);
  EXPECT_EQ(StatusOf(mid_run_collapsed), 200);
  EXPECT_NE(mid_run_collapsed.find("text/plain"), std::string::npos);

  // The final publish renders profiler gauges and the server's own scrape
  // counters (satellite: self-observability) in /metrics.
  const std::string metrics = BodyOf(HttpGet(port, "/metrics"));
  EXPECT_NE(metrics.find("vrl_prof_frames"), std::string::npos);
  EXPECT_NE(metrics.find("vrl_prof_drops"), std::string::npos);
  EXPECT_NE(metrics.find(
                "vrl_obs_scrape_requests_total{endpoint=\"profile\"} 2"),
            std::string::npos);
  EXPECT_NE(metrics.find("vrl_obs_scrape_seconds_total"), std::string::npos);
}

// -- diff_profile.py round-trip (golden pair) ---------------------------------

TEST(DiffProfileScript, PassesOnIdenticalPairFailsOnCountDrift) {
  if (RunCommand("python3 -c pass >/dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 not available";
  }
  const std::string script = std::string(VRL_SCRIPTS_DIR) + "/diff_profile.py";
  const std::string base_path = TempPath("prof_diff_base.json");
  const std::string same_path = TempPath("prof_diff_same.json");
  const std::string drift_path = TempPath("prof_diff_drift.json");

  const auto record = [](Profiler& p, int extra_calls) {
    {
      ScopedPhase run(&p, "run");
      ScopedPhase step(&p, "step");
      step.AddUnits(8);
    }
    for (int i = 0; i < extra_calls; ++i) {
      ScopedPhase run(&p, "run");
    }
  };
  Profiler base, same, drift;
  record(base, 0);
  record(same, 0);
  record(drift, 2);  // count drift: deterministic counts changed
  for (const auto& [path, profiler] :
       {std::pair<const std::string&, Profiler&>{base_path, base},
        {same_path, same},
        {drift_path, drift}}) {
    std::ofstream os(path);
    WriteProfileJson(os, profiler.Snapshot(/*scrub_times=*/true));
  }

  EXPECT_EQ(RunCommand("python3 " + script + " " + base_path + " " +
                       same_path + " >/dev/null 2>&1"),
            0);
  EXPECT_EQ(RunCommand("python3 " + script + " " + base_path + " " +
                       drift_path + " >/dev/null 2>&1"),
            1);
  // --allow-count-drift downgrades the count change to a note.
  EXPECT_EQ(RunCommand("python3 " + script + " --allow-count-drift " +
                       base_path + " " + drift_path + " >/dev/null 2>&1"),
            0);
  // The validator accepts what the exporter writes.
  EXPECT_EQ(RunCommand("python3 " + std::string(VRL_SCRIPTS_DIR) +
                       "/check_profile_report.py " + base_path +
                       " --expect-phase step >/dev/null 2>&1"),
            0);
}

}  // namespace
}  // namespace vrl::prof
