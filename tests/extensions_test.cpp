// Tests for the extension modules: technology-node presets, SPICE deck
// export, the VrlConfig file format, and spare-row remapping.

#include <gtest/gtest.h>

#include <sstream>

#include "circuit/dram_circuits.hpp"
#include "circuit/spice_export.hpp"
#include "common/error.hpp"
#include "common/nodes.hpp"
#include "core/config_io.hpp"
#include "core/integrity.hpp"
#include "core/vrl_system.hpp"
#include "model/refresh_model.hpp"
#include "retention/distribution.hpp"
#include "retention/profiler.hpp"

namespace vrl {
namespace {

// ---------------------------------------------------------------------------
// Technology nodes
// ---------------------------------------------------------------------------

TEST(Nodes, AllPresetsValidate) {
  for (const auto& node : AllNodes()) {
    EXPECT_NO_THROW(node.params.Validate()) << node.name;
  }
}

TEST(Nodes, LookupByName) {
  EXPECT_EQ(NodeByName("65nm").name, "65nm");
  EXPECT_DOUBLE_EQ(NodeByName("45nm").params.vdd, 1.0);
  EXPECT_THROW(NodeByName("180nm"), ConfigError);
}

TEST(Nodes, SupplyVoltageScalesDown) {
  EXPECT_GT(Node90nm().params.vdd, Node65nm().params.vdd);
  EXPECT_GT(Node65nm().params.vdd, Node45nm().params.vdd);
}

TEST(Nodes, ModelWorksAtEveryNode) {
  for (const auto& node : AllNodes()) {
    const model::RefreshModel m(node.params);
    const auto full = m.FullRefreshTimings();
    const auto partial = m.PartialRefreshTimings();
    EXPECT_LT(partial.trfc(), full.trfc()) << node.name;
    // The restore-tail structure survives scaling (paper §4): the ratio
    // stays in a narrow band around the paper's 0.58.
    const double ratio = static_cast<double>(partial.trfc()) /
                         static_cast<double>(full.trfc());
    EXPECT_GT(ratio, 0.5) << node.name;
    EXPECT_LT(ratio, 0.7) << node.name;
  }
}

TEST(Nodes, SmallerNodesAreFaster) {
  const model::RefreshModel m90(Node90nm().params);
  const model::RefreshModel m45(Node45nm().params);
  EXPECT_LT(m45.FullRefreshTimings().trfc(), m90.FullRefreshTimings().trfc());
}

// ---------------------------------------------------------------------------
// SPICE deck export
// ---------------------------------------------------------------------------

TEST(SpiceExport, EmitsAllDeviceClasses) {
  const TechnologyParams tech;
  auto eq = circuit::BuildEqualizationCircuit(tech, 0.0);
  std::ostringstream os;
  circuit::WriteSpiceDeck(eq.netlist, circuit::SpiceExportOptions{}, os);
  const std::string deck = os.str();
  EXPECT_NE(deck.find("R1 "), std::string::npos);
  EXPECT_NE(deck.find("C1 "), std::string::npos);
  EXPECT_NE(deck.find("V1 "), std::string::npos);
  EXPECT_NE(deck.find("M1 "), std::string::npos);
  EXPECT_NE(deck.find(".model NMOD1 NMOS LEVEL=1"), std::string::npos);
  EXPECT_NE(deck.find(".tran "), std::string::npos);
  EXPECT_NE(deck.find(".end"), std::string::npos);
}

TEST(SpiceExport, GroundPrintsAsZero) {
  circuit::Netlist netlist;
  netlist.AddResistor(netlist.Node("a"), circuit::kGround, 100.0);
  std::ostringstream os;
  circuit::WriteSpiceDeck(netlist, circuit::SpiceExportOptions{}, os);
  EXPECT_NE(os.str().find("R1 a 0 100"), std::string::npos);
}

TEST(SpiceExport, PwlSourcesCarryBreakpoints) {
  circuit::Netlist netlist;
  const auto node = netlist.Node("sig");
  netlist.AddVpwl(node, circuit::kGround, {{0.0, 0.0}, {1e-9, 1.2}});
  netlist.AddResistor(node, circuit::kGround, 1e3);
  std::ostringstream os;
  circuit::WriteSpiceDeck(netlist, circuit::SpiceExportOptions{}, os);
  EXPECT_NE(os.str().find("PWL(0 0 1e-09 1.2)"), std::string::npos);
}

TEST(SpiceExport, PmosModelHasNegativeVto) {
  circuit::Netlist netlist;
  const auto a = netlist.Node("a");
  netlist.AddMosfet(circuit::MosType::kPmos, a, a, circuit::kGround,
                    {0.4, 1e-3, 0.0});
  std::ostringstream os;
  circuit::WriteSpiceDeck(netlist, circuit::SpiceExportOptions{}, os);
  EXPECT_NE(os.str().find("PMOS LEVEL=1 VTO=-0.4"), std::string::npos);
}

TEST(SpiceExport, InitialConditionsEmitted) {
  circuit::Netlist netlist;
  const auto a = netlist.Node("cell");
  netlist.AddCapacitor(a, circuit::kGround, 24e-15);
  netlist.SetInitialCondition(a, 1.2);
  std::ostringstream os;
  circuit::WriteSpiceDeck(netlist, circuit::SpiceExportOptions{}, os);
  EXPECT_NE(os.str().find(".ic V(cell)=1.2"), std::string::npos);
}

TEST(SpiceExport, RejectsBadOptions) {
  circuit::Netlist netlist;
  netlist.AddResistor(netlist.Node("a"), circuit::kGround, 1.0);
  circuit::SpiceExportOptions options;
  options.t_stop_s = 0.0;
  std::ostringstream os;
  EXPECT_THROW(circuit::WriteSpiceDeck(netlist, options, os), ConfigError);
}

// ---------------------------------------------------------------------------
// VrlConfig file format
// ---------------------------------------------------------------------------

TEST(ConfigIo, ParsesAllKeys) {
  std::istringstream is(
      "# comment\n"
      "banks = 4\n"
      "nbits = 3\n"
      "seed = 99\n"
      "spare_rows = 64\n"
      "retention_guardband = 1.5\n"
      "scheduler = fr-fcfs\n"
      "node = 65nm\n"
      "rows = 4096\n"
      "columns = 64\n"
      "partial_target = 0.93\n"
      "compounding = 5.0\n");
  const auto config = core::ParseVrlConfig(is);
  EXPECT_EQ(config.banks, 4u);
  EXPECT_EQ(config.nbits, 3u);
  EXPECT_EQ(config.seed, 99u);
  EXPECT_EQ(config.spare_rows, 64u);
  EXPECT_DOUBLE_EQ(config.retention_guardband, 1.5);
  EXPECT_EQ(config.scheduler, dram::SchedulerKind::kFrFcfs);
  EXPECT_DOUBLE_EQ(config.tech.vdd, 1.1);  // from the 65nm node
  EXPECT_EQ(config.tech.rows, 4096u);      // overridden after node
  EXPECT_EQ(config.tech.columns, 64u);
  EXPECT_DOUBLE_EQ(config.spec.partial_target, 0.93);
  EXPECT_DOUBLE_EQ(config.spec.partial_deficit_compounding, 5.0);
}

TEST(ConfigIo, EmptyStreamGivesDefaults) {
  std::istringstream is("");
  const auto config = core::ParseVrlConfig(is);
  EXPECT_EQ(config.banks, core::VrlConfig{}.banks);
  EXPECT_EQ(config.nbits, core::VrlConfig{}.nbits);
}

TEST(ConfigIo, RejectsUnknownKey) {
  std::istringstream is("bankz = 4\n");
  EXPECT_THROW(core::ParseVrlConfig(is), ParseError);
}

TEST(ConfigIo, RejectsMalformedLines) {
  std::istringstream no_eq("banks 4\n");
  EXPECT_THROW(core::ParseVrlConfig(no_eq), ParseError);
  std::istringstream bad_value("banks = four\n");
  EXPECT_THROW(core::ParseVrlConfig(bad_value), ParseError);
  std::istringstream bad_sched("scheduler = random\n");
  EXPECT_THROW(core::ParseVrlConfig(bad_sched), ParseError);
}

TEST(ConfigIo, RejectsInvalidResult) {
  std::istringstream is("nbits = 12\n");
  EXPECT_THROW(core::ParseVrlConfig(is), ConfigError);
}

TEST(ConfigIo, ParsesPagePolicy) {
  std::istringstream open_is("page_policy = open\n");
  EXPECT_EQ(core::ParseVrlConfig(open_is).page_policy,
            dram::RowBufferPolicy::kOpenPage);
  std::istringstream closed_is("page_policy = closed\n");
  EXPECT_EQ(core::ParseVrlConfig(closed_is).page_policy,
            dram::RowBufferPolicy::kClosedPage);
  std::istringstream bad("page_policy = half-open\n");
  EXPECT_THROW(core::ParseVrlConfig(bad), ParseError);
}

TEST(ConfigIo, RoundTripsThroughWrite) {
  core::VrlConfig config;
  config.banks = 2;
  config.nbits = 3;
  config.spare_rows = 32;
  config.retention_guardband = 1.25;
  config.scheduler = dram::SchedulerKind::kFrFcfs;
  std::ostringstream os;
  core::WriteVrlConfig(config, os);
  std::istringstream is(os.str());
  const auto back = core::ParseVrlConfig(is);
  EXPECT_EQ(back.banks, 2u);
  EXPECT_EQ(back.nbits, 3u);
  EXPECT_EQ(back.spare_rows, 32u);
  EXPECT_DOUBLE_EQ(back.retention_guardband, 1.25);
  EXPECT_EQ(back.scheduler, dram::SchedulerKind::kFrFcfs);
}

TEST(ConfigIo, MissingFileThrows) {
  EXPECT_THROW(core::LoadVrlConfigFile("/nonexistent/vrl.conf"), ParseError);
}

// ---------------------------------------------------------------------------
// Spare-row remapping
// ---------------------------------------------------------------------------

TEST(SpareRows, RemappingClearsClampedRows) {
  core::VrlConfig config;
  config.banks = 1;
  config.retention_guardband = 2.0;

  const core::VrlSystem without(config);
  ASSERT_GT(without.guardband_clamped_rows(), 0u);

  config.spare_rows = 256;
  const core::VrlSystem with(config);
  EXPECT_EQ(with.guardband_clamped_rows(), 0u);
  EXPECT_EQ(with.remapped_rows(), without.guardband_clamped_rows());
}

TEST(SpareRows, RemappingOnlyStrengthensRows) {
  core::VrlConfig config;
  config.banks = 1;
  config.retention_guardband = 2.0;
  const core::VrlSystem without(config);
  config.spare_rows = 256;
  const core::VrlSystem with(config);
  for (std::size_t r = 0; r < with.profile().rows(); ++r) {
    EXPECT_GE(with.profile().RowRetention(r),
              without.profile().RowRetention(r) - 1e-12);
  }
}

TEST(SpareRows, NoGuardbandNeedsNoRemap) {
  core::VrlConfig config;
  config.banks = 1;
  config.spare_rows = 256;
  const core::VrlSystem system(config);
  EXPECT_EQ(system.remapped_rows(), 0u);
}

TEST(SpareRows, TooFewSparesRemapsWeakestFirst) {
  core::VrlConfig config;
  config.banks = 1;
  config.retention_guardband = 2.0;
  const core::VrlSystem without(config);
  config.spare_rows = 5;
  const core::VrlSystem with(config);
  EXPECT_LE(with.remapped_rows(), 5u);
  EXPECT_EQ(with.guardband_clamped_rows() + with.remapped_rows(),
            without.guardband_clamped_rows());
}

TEST(SpareRows, GuardedAndRemappedSystemIsSafeAtRatedTemperature) {
  core::VrlConfig config;
  config.banks = 1;
  config.retention_guardband = 2.0;
  config.spare_rows = 256;
  const core::VrlSystem system(config);
  // Rated to 55C; check inside the rating.
  const core::IntegrityChecker checker(system, 0.55);  // scale > 1/guard
  EXPECT_FALSE(checker.Check(core::PolicyKind::kVrl, 8).DataLost());
}

// ---------------------------------------------------------------------------
// External-profile pipeline: measure -> plan -> verify
// ---------------------------------------------------------------------------

TEST(ExternalProfile, SystemAcceptsMeasuredProfile) {
  core::VrlConfig config;
  config.banks = 1;

  // A true chip, profiled by the simulated profiler.
  Rng rng(99);
  const retention::RetentionDistribution dist(config.retention);
  const auto truth = retention::RetentionProfile::Generate(
      dist, config.tech.rows, config.tech.columns, rng);
  const auto measured = retention::MeasureProfile(
      truth, {}, retention::VrtParams{}, retention::StandardCampaign(), rng);

  // Plan from the *measured* profile; replay against the *true* physics.
  const core::VrlSystem system(config, measured);
  EXPECT_EQ(system.profile().rows(), config.tech.rows);
  const core::IntegrityChecker checker(system, truth);
  const auto report = checker.Check(core::PolicyKind::kVrl, 8);
  // Measurement is conservative (grid rounds down), so planning from it is
  // safe against the truth.
  EXPECT_FALSE(report.DataLost());
}

TEST(ExternalProfile, RejectsWrongSize) {
  core::VrlConfig config;
  config.banks = 1;
  const retention::RetentionProfile tiny({1.0, 2.0});
  EXPECT_THROW(core::VrlSystem(config, tiny), ConfigError);
}

TEST(ExternalProfile, InternalAndExternalAgreeOnSameProfile) {
  core::VrlConfig config;
  config.banks = 1;
  const core::VrlSystem internal(config);
  const core::VrlSystem external(config, internal.profile());
  EXPECT_EQ(internal.row_mprsf(), external.row_mprsf());
  EXPECT_EQ(internal.binning().rows_per_bin, external.binning().rows_per_bin);
}

}  // namespace
}  // namespace vrl
