// Edge-case coverage for the circuit engine, waveform container and the
// small common utilities — the paths the happy-path suites do not reach.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "circuit/dram_circuits.hpp"
#include "circuit/spice_export.hpp"
#include "circuit/transient.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "common/technology.hpp"
#include "common/units.hpp"

namespace vrl {
namespace {

using circuit::kGround;
using circuit::MosType;
using circuit::Netlist;
using circuit::NodeId;
using circuit::RunTransient;
using circuit::TransientOptions;

// ---------------------------------------------------------------------------
// Transient engine edges
// ---------------------------------------------------------------------------

TEST(TransientEdge, StoreEveryDecimatesSamples) {
  Netlist n;
  const NodeId top = n.Node("top");
  n.AddResistor(top, kGround, 1e3);
  n.AddCapacitor(top, kGround, 1e-12);
  n.SetInitialCondition(top, 1.0);

  TransientOptions options;
  options.t_stop_s = 1e-9;
  options.dt_s = 1e-12;  // 1000 steps
  options.store_every = 100;
  const auto wave = RunTransient(n, options, {"top"});
  // Initial sample + every 100th + the final step.
  EXPECT_LE(wave.sample_count(), 12u);
  EXPECT_GE(wave.sample_count(), 11u);
}

TEST(TransientEdge, PwlMidRunStepIsTracked) {
  // Source steps 0 -> 1 V at 0.5 ns; the RC output follows with its own
  // time constant from that point.
  Netlist n;
  const NodeId src = n.Node("src");
  const NodeId out = n.Node("out");
  n.AddVpwl(src, kGround, {{0.0, 0.0}, {0.5e-9, 0.0}, {0.52e-9, 1.0}});
  n.AddResistor(src, out, 1e3);
  n.AddCapacitor(out, kGround, 1e-12);

  TransientOptions options;
  options.t_stop_s = 4e-9;
  options.dt_s = 1e-12;
  const auto wave = RunTransient(n, options, {"out"});
  EXPECT_NEAR(wave.ValueAt("out", 0.45e-9), 0.0, 1e-3);
  const double rc = 1e-9;
  const double t_after = 1.5e-9 - 0.52e-9;
  EXPECT_NEAR(wave.ValueAt("out", 1.5e-9), 1.0 - std::exp(-t_after / rc),
              5e-3);
}

TEST(TransientEdge, NewtonIterationLimitThrows) {
  // A nonlinear circuit cannot converge in a single damped iteration from a
  // far-off initial state.
  Netlist n;
  const NodeId vd = n.Node("vd");
  const NodeId out = n.Node("out");
  n.AddVdc(vd, kGround, 1.2);
  n.AddMosfet(MosType::kNmos, vd, vd, out, {0.4, 5e-3, 0.0});
  n.AddResistor(out, kGround, 10e3);
  n.AddCapacitor(out, kGround, 1e-15);

  TransientOptions options;
  options.t_stop_s = 1e-10;
  options.dt_s = 1e-11;
  options.max_newton_iterations = 1;
  options.v_abstol = 1e-12;
  EXPECT_THROW(RunTransient(n, options, {"out"}), NumericalError);
}

TEST(TransientEdge, DcRejectsNonGroundReferencedSource) {
  Netlist n;
  const NodeId a = n.Node("a");
  const NodeId b = n.Node("b");
  n.AddVdc(a, b, 1.0);
  n.AddResistor(a, b, 1e3);
  EXPECT_THROW(circuit::SolveDc(n, circuit::DcOptions{}), ConfigError);
}

TEST(TransientEdge, UnknownProbeThrows) {
  Netlist n;
  n.AddResistor(n.Node("a"), kGround, 1e3);
  TransientOptions options;
  EXPECT_THROW(RunTransient(n, options, {"nope"}), ConfigError);
}

// ---------------------------------------------------------------------------
// Spice export on a large (banded-path) array netlist
// ---------------------------------------------------------------------------

TEST(SpiceExportEdge, ArrayDeckHasOneDevicePerCell) {
  TechnologyParams tech;
  tech.columns = 32;
  auto array = circuit::BuildChargeSharingArray(tech, DataPattern::kRandom);
  std::ostringstream os;
  circuit::WriteSpiceDeck(array.netlist, circuit::SpiceExportOptions{}, os);
  const std::string deck = os.str();
  std::size_t mosfets = 0;
  for (std::size_t pos = 0; (pos = deck.find("\nM", pos)) != std::string::npos;
       ++pos) {
    ++mosfets;
  }
  EXPECT_EQ(mosfets, 32u);  // one access transistor per bitline
}

// ---------------------------------------------------------------------------
// Waveform and table edges
// ---------------------------------------------------------------------------

TEST(WaveformEdge, ValueAtClampsBeforeFirstSample) {
  circuit::Waveform wave;
  wave.AddSignal("x");
  wave.Append(1.0, {5.0});
  wave.Append(2.0, {7.0});
  EXPECT_DOUBLE_EQ(wave.ValueAt("x", 0.0), 5.0);
  EXPECT_DOUBLE_EQ(wave.ValueAt("x", 3.0), 7.0);
}

TEST(WaveformEdge, FallingCrossingDetected) {
  circuit::Waveform wave;
  wave.AddSignal("x");
  wave.Append(0.0, {1.0});
  wave.Append(1.0, {0.0});
  EXPECT_NEAR(wave.CrossingTime("x", 0.25, /*rising=*/false), 0.75, 1e-12);
  EXPECT_LT(wave.CrossingTime("x", 0.25, /*rising=*/true), 0.0);
}

TEST(TextTableEdge, EmptyTablePrintsHeaderOnly) {
  TextTable t({"a", "bb"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("a  bb"), std::string::npos);
  EXPECT_EQ(t.row_count(), 0u);
}

TEST(FmtEdge, HandlesNegativeAndZero) {
  EXPECT_EQ(Fmt(-1.25, 1), "-1.2");  // round-half-even of snprintf
  EXPECT_EQ(Fmt(0.0, 2), "0.00");
  EXPECT_EQ(FmtPercent(-0.5, 0), "-50%");
}

TEST(UnitsEdge, ExactMultipleDoesNotRoundUp) {
  EXPECT_EQ(SecondsToCyclesCeil(5e-9, 2.5e-9), 2u);
  EXPECT_EQ(SecondsToCyclesCeil(5.000001e-9, 2.5e-9), 3u);
}

TEST(NetlistEdge, NodeNameOutOfRangeThrows) {
  Netlist n;
  EXPECT_THROW(n.NodeName(99), ConfigError);
}

}  // namespace
}  // namespace vrl
