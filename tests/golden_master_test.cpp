// Golden-master equivalence: the paper-figure bench binaries, pinned to the
// single-bank-equivalent timing preset, must emit byte-for-byte the JSON
// committed under tests/golden/.  This is the contract the hierarchy PR
// makes checkable: introducing channels/ranks/bank groups behind the
// MemoryController API changed *no* output byte of the flat model.
//
// table1_accuracy embeds wall-clock durations ("29.84 ms"); those — and
// only those — are scrubbed from both sides before comparing.  The figure
// fixtures are fully deterministic and compare raw.
//
// The bench and fixture directories arrive as compile definitions
// (VRL_BENCH_DIR, VRL_GOLDEN_DIR) from tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>

namespace {

std::string BenchDir() { return VRL_BENCH_DIR; }
std::string GoldenDir() { return VRL_GOLDEN_DIR; }

/// Runs `<bench>/<name> --json -` and captures stdout.  Text-mode tables go
/// to stdout too when --json targets a file, so `-` keeps the pipe pure
/// JSON.
std::string RunBench(const std::string& name) {
  const std::string command = BenchDir() + "/" + name + " --json - 2>/dev/null";
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) {
    ADD_FAILURE() << "popen failed for " << command;
    return {};
  }
  std::string output;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, n);
  }
  const int status = ::pclose(pipe);
  EXPECT_EQ(status, 0) << command << " exited with status " << status;
  return output;
}

std::string ReadFixture(const std::string& name) {
  const std::string path = GoldenDir() + "/" + name + ".json";
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ADD_FAILURE() << "missing fixture " << path;
    return {};
  }
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

/// Replaces embedded wall-clock durations ("29.84 ms", "43.2 us") with a
/// fixed token.  Applied to both sides so the comparison stays exact on
/// everything that is actually deterministic.
std::string ScrubWallClock(const std::string& text) {
  static const std::regex kDuration("[0-9]+\\.?[0-9]* (ms|us)");
  return std::regex_replace(text, kDuration, "<time>");
}

void ExpectMatchesGolden(const std::string& name, bool scrub = false) {
  std::string actual = RunBench(name);
  std::string expected = ReadFixture(name);
  ASSERT_FALSE(actual.empty());
  ASSERT_FALSE(expected.empty());
  if (scrub) {
    actual = ScrubWallClock(actual);
    expected = ScrubWallClock(expected);
  }
  EXPECT_EQ(actual, expected)
      << name << " --json output drifted from tests/golden/" << name
      << ".json — if the change is intentional, regenerate the fixture and "
         "say so in the PR; if not, the flat model is no longer "
         "byte-equivalent.";
}

TEST(GoldenMaster, Fig1aRestoreCurve) {
  ExpectMatchesGolden("fig1a_restore_curve");
}

TEST(GoldenMaster, Fig1bPartialRefresh) {
  ExpectMatchesGolden("fig1b_partial_refresh");
}

TEST(GoldenMaster, Fig3RetentionBinning) {
  ExpectMatchesGolden("fig3_retention_binning");
}

TEST(GoldenMaster, Fig4RefreshOverhead) {
  ExpectMatchesGolden("fig4_refresh_overhead");
}

TEST(GoldenMaster, Fig5Equalization) {
  ExpectMatchesGolden("fig5_equalization");
}

TEST(GoldenMaster, Table1Accuracy) {
  ExpectMatchesGolden("table1_accuracy", /*scrub=*/true);
}

TEST(GoldenMaster, ScrubberOnlyTouchesDurations) {
  EXPECT_EQ(ScrubWallClock("\"t(circuit)\":\"29.84 ms\",\"x\":\"43.2 us\""),
            "\"t(circuit)\":\"<time>\",\"x\":\"<time>\"");
  // Column headers like "t(circuit) ms-vs-us" carry no digit before the
  // unit and survive; plain numbers survive.
  EXPECT_EQ(ScrubWallClock("\"cycles\":\"29.84\",\"unit\":\"ms\""),
            "\"cycles\":\"29.84\",\"unit\":\"ms\"");
}

}  // namespace
