// Property-based timing conformance: randomized request streams pushed
// through every timing preset must replay violation-free under the passive
// TimingAuditor, byte-for-byte deterministically — including across
// ParallelMap thread counts (1/2/8), the determinism contract CI relies on
// when it diffs audit artifacts.  The single-bank-equivalent preset must
// additionally reproduce the flat controller's statistics exactly.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "dram/auditor.hpp"
#include "dram/controller.hpp"
#include "dram/refresh_policy.hpp"
#include "dram/timing_table.hpp"
#include "retention/profile.hpp"

namespace vrl::dram {
namespace {

TimingParams FastTiming() {
  TimingParams t;
  t.t_refi = 1000;
  t.t_refw = 64000;
  return t;
}

retention::BinningResult UniformBinning(std::size_t rows, double retention) {
  const retention::RetentionProfile profile(
      std::vector<double>(rows, retention));
  return retention::BinRows(profile, retention::StandardBinPeriods());
}

PolicyFactory JedecFactory(std::size_t rows, Cycles window) {
  return [=]() { return std::make_unique<JedecPolicy>(rows, window, 26); };
}

/// A VRL factory so the audited streams carry *variable* refresh latencies —
/// the paper's point, and the interesting case for refresh-occupancy checks.
PolicyFactory VrlFactory(std::size_t rows) {
  const auto plan = MakeRefreshPlan(UniformBinning(rows, 1.0), 2.5e-9,
                                    std::vector<std::size_t>(rows, 3));
  return [=]() { return std::make_unique<VrlPolicy>(plan, 26, 15); };
}

std::vector<Request> RandomStream(std::size_t n, std::size_t banks,
                                  std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Request> requests;
  requests.reserve(n);
  Cycles arrival = 0;
  for (std::size_t i = 0; i < n; ++i) {
    arrival += static_cast<Cycles>(rng.UniformInt(40));
    Request r;
    r.arrival = arrival;
    r.bank = static_cast<std::size_t>(rng.UniformInt(banks));
    r.row = static_cast<std::size_t>(rng.UniformInt(rows));
    r.column = static_cast<std::size_t>(rng.UniformInt(64));
    r.type = rng.UniformInt(2) == 0 ? RequestType::kRead : RequestType::kWrite;
    requests.push_back(r);
  }
  return requests;
}

/// One audited run: build the preset's table on fast core timings, simulate
/// a random stream, replay the command log, return the audit text.
std::string RunAudited(TimingPreset preset, std::uint64_t seed,
                       bool vrl_policy = false, AuditReport* out = nullptr) {
  TimingTable table = MakeTimingTable(preset);
  table.core = FastTiming();
  const std::size_t rows = 16;
  MemoryController controller(
      table, rows,
      vrl_policy ? VrlFactory(rows) : JedecFactory(rows, table.core.t_refw),
      SchedulerKind::kFrFcfs);
  controller.EnableAudit();
  const auto requests =
      RandomStream(300, table.topology.TotalBanks(), rows, seed);
  controller.Run(requests, 2 * table.core.t_refw);
  const TimingAuditor auditor(table);
  AuditReport report = auditor.Audit(*controller.audit_log());
  if (out != nullptr) {
    *out = report;
  }
  return report.ToText(PresetName(preset));
}

// ---------------------------------------------------------------------------
// Zero violations on every preset, for every policy flavor
// ---------------------------------------------------------------------------

class PresetConformance : public ::testing::TestWithParam<TimingPreset> {};

TEST_P(PresetConformance, RandomStreamsAuditClean) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    AuditReport report;
    RunAudited(GetParam(), seed, /*vrl_policy=*/false, &report);
    EXPECT_TRUE(report.clean())
        << PresetName(GetParam()) << " seed=" << seed << "\n"
        << report.ToText(PresetName(GetParam()));
    EXPECT_GT(report.commands_checked, 300u);
  }
}

TEST_P(PresetConformance, VariableLatencyRefreshAuditsClean) {
  AuditReport report;
  RunAudited(GetParam(), 17, /*vrl_policy=*/true, &report);
  EXPECT_TRUE(report.clean()) << report.ToText(PresetName(GetParam()));
  EXPECT_GT(report.commands_checked, 0u);
}

TEST_P(PresetConformance, AuditTextIsDeterministic) {
  EXPECT_EQ(RunAudited(GetParam(), 5), RunAudited(GetParam(), 5));
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetConformance,
                         ::testing::ValuesIn(kAllTimingPresets),
                         [](const auto& info) {
                           return PresetName(info.param);
                         });

// ---------------------------------------------------------------------------
// Thread-count invariance: the audit artifact CI diffs must not depend on
// how many workers produced it
// ---------------------------------------------------------------------------

TEST(ThreadInvariance, AuditLogsByteIdenticalAcross1And2And8Threads) {
  const TimingPreset presets[] = {TimingPreset::kDdr3_1600,
                                  TimingPreset::kDdr4_2400,
                                  TimingPreset::kLpddr4_3200};
  const std::size_t jobs = 6;
  const auto sweep = [&](std::size_t threads) {
    const auto texts = ParallelMap(
        "conformance_sweep", jobs,
        [&](std::size_t i) {
          return RunAudited(presets[i % 3], 100 + i, i % 2 == 1);
        },
        threads);
    std::string joined;
    for (const auto& text : texts) {
      joined += text;
    }
    return joined;
  };
  const std::string serial = sweep(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(sweep(2), serial);
  EXPECT_EQ(sweep(8), serial);
}

// ---------------------------------------------------------------------------
// Single-bank-equivalent ≡ flat model, statistic for statistic
// ---------------------------------------------------------------------------

TEST(SingleBankEquivalent, ReproducesFlatControllerStatsExactly) {
  const std::size_t banks = 8;
  const std::size_t rows = 16;
  const TimingParams timing = FastTiming();
  for (const std::uint64_t seed : {11ULL, 12ULL}) {
    const auto requests = RandomStream(400, banks, rows, seed);
    MemoryController flat(banks, rows, timing,
                          JedecFactory(rows, timing.t_refw),
                          SchedulerKind::kFrFcfs);
    TimingTable table =
        MakeTimingTable(TimingPreset::kSingleBankEquivalent, banks);
    table.core = timing;
    MemoryController sbe(table, rows, JedecFactory(rows, timing.t_refw),
                         SchedulerKind::kFrFcfs);
    EXPECT_FALSE(sbe.hierarchical());
    EXPECT_EQ(sbe.constraint_engine(), nullptr);

    const Cycles horizon = 2 * timing.t_refw;
    const auto a = flat.Run(requests, horizon);
    const auto b = sbe.Run(requests, horizon);
    ASSERT_EQ(a.per_bank.size(), b.per_bank.size());
    EXPECT_EQ(a.simulated_cycles, b.simulated_cycles);
    for (std::size_t i = 0; i < a.per_bank.size(); ++i) {
      EXPECT_EQ(a.per_bank[i].reads, b.per_bank[i].reads) << "bank " << i;
      EXPECT_EQ(a.per_bank[i].writes, b.per_bank[i].writes) << "bank " << i;
      EXPECT_EQ(a.per_bank[i].row_hits, b.per_bank[i].row_hits)
          << "bank " << i;
      EXPECT_EQ(a.per_bank[i].row_misses, b.per_bank[i].row_misses)
          << "bank " << i;
      EXPECT_EQ(a.per_bank[i].activations, b.per_bank[i].activations)
          << "bank " << i;
      EXPECT_EQ(a.per_bank[i].full_refreshes, b.per_bank[i].full_refreshes)
          << "bank " << i;
      EXPECT_EQ(a.per_bank[i].refresh_busy_cycles,
                b.per_bank[i].refresh_busy_cycles)
          << "bank " << i;
      EXPECT_EQ(a.per_bank[i].total_request_latency,
                b.per_bank[i].total_request_latency)
          << "bank " << i;
      EXPECT_EQ(a.per_bank[i].last_completion, b.per_bank[i].last_completion)
          << "bank " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Fuzzed timing tables: arbitrary (valid) constraint sets stay conformant
// ---------------------------------------------------------------------------

TEST(FuzzedTables, RandomConstraintSetsAuditClean) {
  Rng rng(0xF00D);
  for (int iteration = 0; iteration < 8; ++iteration) {
    TimingTable table;
    table.core = FastTiming();
    table.topology = {1 + rng.UniformInt(2), 1 + rng.UniformInt(2),
                      1 + rng.UniformInt(2), 1 + rng.UniformInt(3)};
    table.t_rrd_s = static_cast<Cycles>(rng.UniformInt(5));
    table.t_rrd_l = table.t_rrd_s + static_cast<Cycles>(rng.UniformInt(3));
    table.t_ccd_s = static_cast<Cycles>(rng.UniformInt(4));
    table.t_ccd_l = table.t_ccd_s + static_cast<Cycles>(rng.UniformInt(3));
    table.t_faw = rng.UniformInt(2) == 0
                      ? 0
                      : table.t_rrd_l + static_cast<Cycles>(rng.UniformInt(16));
    table.t_rtrs = static_cast<Cycles>(rng.UniformInt(4));
    table.per_channel_bus = rng.UniformInt(2) == 0;
    ASSERT_NO_THROW(table.Validate());

    const std::size_t rows = 8;
    MemoryController controller(table, rows,
                                JedecFactory(rows, table.core.t_refw),
                                SchedulerKind::kFcfs);
    controller.EnableAudit();
    const auto requests = RandomStream(
        200, table.topology.TotalBanks(), rows, 0x5EED + iteration);
    controller.Run(requests, table.core.t_refw);
    const TimingAuditor auditor(table);
    const AuditReport report = auditor.Audit(*controller.audit_log());
    EXPECT_TRUE(report.clean())
        << "iteration " << iteration << "\n"
        << report.ToText("fuzz");
  }
}

// ---------------------------------------------------------------------------
// Hierarchy engagement: the constraints actually bind under contention
// ---------------------------------------------------------------------------

TEST(Hierarchy, ConstraintsBindUnderSameRankContention) {
  TimingTable table = MakeTimingTable(TimingPreset::kDdr3_1600);
  table.core = FastTiming();
  const std::size_t rows = 16;
  MemoryController controller(table, rows,
                              JedecFactory(rows, table.core.t_refw),
                              SchedulerKind::kFcfs);
  EXPECT_TRUE(controller.hierarchical());
  ASSERT_NE(controller.constraint_engine(), nullptr);

  // Row-conflict storm confined to rank 0: every request a miss, all eight
  // banks activating together — tRRD/tFAW and the shared bus must bind.
  std::vector<Request> requests;
  for (std::size_t i = 0; i < 400; ++i) {
    Request r;
    r.arrival = static_cast<Cycles>(i);
    r.bank = i % table.topology.BanksPerRank();  // rank 0 only
    r.row = i % rows;
    requests.push_back(r);
  }
  controller.Run(requests, table.core.t_refw);
  const ConstraintStats& stats = controller.constraint_engine()->stats();
  EXPECT_GT(stats.TotalStalls(), 0u);
  EXPECT_GT(stats.trrd_stalls + stats.tfaw_stalls, 0u);
  EXPECT_GT(stats.bus_stalls + stats.trtrs_stalls, 0u);

  const HierarchyActivity& activity =
      controller.constraint_engine()->activity();
  ASSERT_EQ(activity.rank_activations.size(), 2u);
  EXPECT_GT(activity.rank_activations[0], 0u);
  EXPECT_EQ(activity.rank_activations[1], 0u);  // rank 1 untouched
}

TEST(Hierarchy, EnableAuditIsIdempotentAndLogsRefreshes) {
  TimingTable table = MakeTimingTable(TimingPreset::kLpddr4_3200);
  table.core = FastTiming();
  const std::size_t rows = 8;
  MemoryController controller(table, rows,
                              JedecFactory(rows, table.core.t_refw));
  CommandLog& log = controller.EnableAudit();
  EXPECT_EQ(&controller.EnableAudit(), &log);
  controller.Run({}, 2 * table.core.t_refw);
  std::size_t refreshes = 0;
  for (const Command& c : log.commands()) {
    if (c.kind == CommandKind::kRefresh) {
      ++refreshes;
      EXPECT_GT(c.trfc, 0u);
    }
  }
  EXPECT_GT(refreshes, 0u);
}

}  // namespace
}  // namespace vrl::dram
