// Property-based tests of the circuit engine: parameterized sweeps over
// device parameters, RC values, integration methods and matrix structures,
// asserting physical invariants rather than point values.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "circuit/banded.hpp"
#include "circuit/dram_circuits.hpp"
#include "circuit/linear.hpp"
#include "circuit/mosfet.hpp"
#include "circuit/netlist.hpp"
#include "circuit/transient.hpp"
#include "common/rng.hpp"
#include "common/technology.hpp"

namespace vrl::circuit {
namespace {

// ---------------------------------------------------------------------------
// MOSFET invariants over a parameter sweep
// ---------------------------------------------------------------------------

class MosfetProperty
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {
 protected:
  Mosfet MakeDevice(MosType type) const {
    const auto [vt, beta, lambda] = GetParam();
    return Mosfet{type, 1, 2, 3, {vt, beta, lambda}};
  }
};

TEST_P(MosfetProperty, CurrentSignMatchesVds) {
  const Mosfet device = MakeDevice(MosType::kNmos);
  for (double vg = 0.0; vg <= 2.0; vg += 0.25) {
    for (double vd = -1.2; vd <= 1.2; vd += 0.2) {
      const MosEval eval = EvaluateMosfet(device, vd, vg, 0.0);
      if (vd > 1e-9) {
        EXPECT_GE(eval.ids, 0.0) << "vg=" << vg << " vd=" << vd;
      } else if (vd < -1e-9) {
        EXPECT_LE(eval.ids, 0.0) << "vg=" << vg << " vd=" << vd;
      }
    }
  }
}

TEST_P(MosfetProperty, CurrentIsAntisymmetricInTerminalSwap) {
  const Mosfet device = MakeDevice(MosType::kNmos);
  for (double a = -0.8; a <= 1.2; a += 0.4) {
    for (double b = -0.8; b <= 1.2; b += 0.4) {
      const double vg = 1.0;
      const MosEval fwd = EvaluateMosfet(device, a, vg, b);
      const MosEval rev = EvaluateMosfet(device, b, vg, a);
      EXPECT_NEAR(fwd.ids, -rev.ids, 1e-15 + 1e-9 * std::abs(fwd.ids));
    }
  }
}

TEST_P(MosfetProperty, CurrentIsContinuousAcrossRegions) {
  // Scan vds through the cutoff->triode->saturation transitions and verify
  // no jumps larger than what the local slope explains.
  const Mosfet device = MakeDevice(MosType::kNmos);
  const double vg = 1.0;
  const double step = 1e-4;
  double prev = EvaluateMosfet(device, 0.0, vg, 0.0).ids;
  for (double vd = step; vd <= 1.5; vd += step) {
    const MosEval eval = EvaluateMosfet(device, vd, vg, 0.0);
    const double jump = std::abs(eval.ids - prev);
    // |di| <= (gds at either side + margin) * dv
    const double bound = (std::abs(eval.gds) + 1e-3) * step * 10.0 + 1e-12;
    EXPECT_LE(jump, bound) << "discontinuity near vd=" << vd;
    prev = eval.ids;
  }
}

TEST_P(MosfetProperty, GmIsNonNegativeForNmosForwardOperation) {
  const Mosfet device = MakeDevice(MosType::kNmos);
  for (double vg = 0.0; vg <= 2.0; vg += 0.2) {
    for (double vd = 0.05; vd <= 1.2; vd += 0.2) {
      const MosEval eval = EvaluateMosfet(device, vd, vg, 0.0);
      EXPECT_GE(eval.gm, -1e-15);
    }
  }
}

TEST_P(MosfetProperty, PmosMirrorsNmosEverywhere) {
  const Mosfet nmos = MakeDevice(MosType::kNmos);
  const Mosfet pmos = MakeDevice(MosType::kPmos);
  for (double vd = -1.0; vd <= 1.0; vd += 0.5) {
    for (double vg = -1.5; vg <= 1.5; vg += 0.5) {
      for (double vs = -1.0; vs <= 1.0; vs += 0.5) {
        const MosEval en = EvaluateMosfet(nmos, vd, vg, vs);
        const MosEval ep = EvaluateMosfet(pmos, -vd, -vg, -vs);
        EXPECT_NEAR(ep.ids, -en.ids, 1e-15 + 1e-9 * std::abs(en.ids));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DeviceCorners, MosfetProperty,
    ::testing::Values(std::make_tuple(0.4, 1e-3, 0.0),
                      std::make_tuple(0.4, 1e-3, 0.05),
                      std::make_tuple(0.3, 5e-3, 0.1),
                      std::make_tuple(0.6, 2e-4, 0.02),
                      std::make_tuple(0.2, 1e-2, 0.0)));

// ---------------------------------------------------------------------------
// RC transients across R, C, dt and method
// ---------------------------------------------------------------------------

struct RcCase {
  double r_ohms;
  double c_farads;
  double dt_s;
  Integration method;
};

class RcProperty : public ::testing::TestWithParam<RcCase> {};

TEST_P(RcProperty, DischargeMatchesAnalytic) {
  const RcCase c = GetParam();
  Netlist netlist;
  const NodeId top = netlist.Node("top");
  netlist.AddResistor(top, kGround, c.r_ohms);
  netlist.AddCapacitor(top, kGround, c.c_farads);
  netlist.SetInitialCondition(top, 1.0);

  const double rc = c.r_ohms * c.c_farads;
  TransientOptions options;
  options.t_stop_s = 3.0 * rc;
  options.dt_s = c.dt_s * rc;  // dt scaled to the time constant
  options.method = c.method;
  const Waveform wave = RunTransient(netlist, options, {"top"});

  for (const double frac : {0.5, 1.0, 2.0}) {
    const double t = frac * rc;
    // First-order methods at coarse steps: allow error ~ dt/rc.
    const double tolerance = 2.0 * c.dt_s + 1e-4;
    EXPECT_NEAR(wave.ValueAt("top", t), std::exp(-frac), tolerance)
        << "R=" << c.r_ohms << " C=" << c.c_farads;
  }
}

TEST_P(RcProperty, VoltageDecaysMonotonically) {
  const RcCase c = GetParam();
  Netlist netlist;
  const NodeId top = netlist.Node("top");
  netlist.AddResistor(top, kGround, c.r_ohms);
  netlist.AddCapacitor(top, kGround, c.c_farads);
  netlist.SetInitialCondition(top, 1.0);

  TransientOptions options;
  const double rc = c.r_ohms * c.c_farads;
  options.t_stop_s = 3.0 * rc;
  options.dt_s = c.dt_s * rc;
  options.method = c.method;
  const Waveform wave = RunTransient(netlist, options, {"top"});
  const auto& samples = wave.Samples("top");
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LE(samples[i], samples[i - 1] + 1e-9);
    EXPECT_GE(samples[i], -1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RcGrid, RcProperty,
    ::testing::Values(RcCase{1e3, 1e-12, 0.002, Integration::kTrapezoidal},
                      RcCase{1e3, 1e-12, 0.002, Integration::kBackwardEuler},
                      RcCase{50.0, 100e-15, 0.001, Integration::kTrapezoidal},
                      RcCase{1e6, 10e-15, 0.005, Integration::kBackwardEuler},
                      RcCase{25e3, 24e-15, 0.001, Integration::kTrapezoidal},
                      RcCase{10.0, 1e-9, 0.002, Integration::kTrapezoidal}));

// ---------------------------------------------------------------------------
// Charge conservation in capacitive dividers
// ---------------------------------------------------------------------------

class ChargeConservation
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(ChargeConservation, FinalVoltageIsChargeWeightedAverage) {
  const auto [c1, c2, v1] = GetParam();
  Netlist netlist;
  const NodeId a = netlist.Node("a");
  const NodeId b = netlist.Node("b");
  netlist.AddCapacitor(a, kGround, c1);
  netlist.AddCapacitor(b, kGround, c2);
  netlist.AddResistor(a, b, 10e3);
  netlist.SetInitialCondition(a, v1);
  netlist.SetInitialCondition(b, 0.3);

  TransientOptions options;
  const double tau = 10e3 * (c1 * c2) / (c1 + c2);
  options.t_stop_s = 20.0 * tau;
  options.dt_s = tau / 50.0;
  const Waveform wave = RunTransient(netlist, options, {"a", "b"});

  const double expected = (c1 * v1 + c2 * 0.3) / (c1 + c2);
  EXPECT_NEAR(wave.FinalValue("a"), expected, 2e-3);
  EXPECT_NEAR(wave.FinalValue("b"), expected, 2e-3);
}

INSTANTIATE_TEST_SUITE_P(
    CapacitorRatios, ChargeConservation,
    ::testing::Values(std::make_tuple(24e-15, 200e-15, 1.2),
                      std::make_tuple(24e-15, 24e-15, 1.2),
                      std::make_tuple(500e-15, 24e-15, 0.9),
                      std::make_tuple(10e-15, 1000e-15, 1.0)));

// ---------------------------------------------------------------------------
// Banded solver equals dense solver on random banded systems
// ---------------------------------------------------------------------------

class BandedVsDense
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(BandedVsDense, SolutionsAgree) {
  const auto [n, halfband] = GetParam();
  Rng rng(n * 1000 + halfband);
  BandedMatrix band(n, halfband);
  DenseMatrix dense(n, n);
  std::vector<double> rhs(n);

  for (std::size_t i = 0; i < n; ++i) {
    double offdiag_sum = 0.0;
    const std::size_t lo = i > halfband ? i - halfband : 0;
    const std::size_t hi = std::min(n - 1, i + halfband);
    for (std::size_t j = lo; j <= hi; ++j) {
      if (j == i) {
        continue;
      }
      const double v = rng.Uniform(-1.0, 1.0);
      band.At(i, j) = v;
      dense.At(i, j) = v;
      offdiag_sum += std::abs(v);
    }
    // Diagonal dominance (the banded solver's contract).
    const double d = offdiag_sum + rng.Uniform(0.5, 2.0);
    band.At(i, i) = d;
    dense.At(i, i) = d;
    rhs[i] = rng.Uniform(-5.0, 5.0);
  }

  std::vector<double> xb = rhs;
  band.SolveInPlace(xb);
  std::vector<double> xd = rhs;
  SolveInPlace(dense, xd);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(xb[i], xd[i], 1e-9 * (1.0 + std::abs(xd[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BandedVsDense,
    ::testing::Values(std::make_tuple(std::size_t{5}, std::size_t{1}),
                      std::make_tuple(std::size_t{20}, std::size_t{2}),
                      std::make_tuple(std::size_t{64}, std::size_t{3}),
                      std::make_tuple(std::size_t{100}, std::size_t{6}),
                      std::make_tuple(std::size_t{128}, std::size_t{1}),
                      std::make_tuple(std::size_t{33}, std::size_t{8})));

// ---------------------------------------------------------------------------
// Engine equivalence: banded fast path vs dense on a real array netlist
// ---------------------------------------------------------------------------

TEST(EnginePaths, LargeArrayMatchesSmallArrayPhysics) {
  // A 72-bitline array (banded path) must show the same per-bitline physics
  // as an 8-bitline one (dense path): identical charge-sharing swing in the
  // interior for the same technology.
  TechnologyParams small;
  small.rows = 2048;
  small.columns = 8;
  TechnologyParams large = small;
  large.columns = 72;

  TransientOptions options;
  options.t_stop_s = 20e-9;
  options.dt_s = 20e-12;

  auto run = [&](const TechnologyParams& tech) {
    auto array = BuildChargeSharingArray(tech, DataPattern::kAllOnes);
    const std::size_t mid = tech.columns / 2;
    const auto wave =
        RunTransient(array.netlist, options, {array.bitline_nodes[mid]});
    return wave.FinalValue(array.bitline_nodes[mid]);
  };

  EXPECT_NEAR(run(small), run(large), 2e-3);
}

}  // namespace
}  // namespace vrl::circuit
