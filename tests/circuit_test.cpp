#include <gtest/gtest.h>

#include <cmath>

#include "circuit/banded.hpp"
#include "circuit/dram_circuits.hpp"
#include "circuit/linear.hpp"
#include "circuit/mosfet.hpp"
#include "circuit/netlist.hpp"
#include "circuit/transient.hpp"
#include "common/error.hpp"
#include "common/technology.hpp"

namespace vrl::circuit {
namespace {

// ---------------------------------------------------------------------------
// Dense / banded linear algebra
// ---------------------------------------------------------------------------

TEST(DenseSolve, SolvesKnown3x3) {
  DenseMatrix a(3, 3);
  // [[4,1,0],[1,3,1],[0,1,2]] x = [9, 13, 8] -> x = [2, 1, 3.5]... solve by
  // construction instead: pick x, compute b.
  const double m[3][3] = {{4, 1, 0}, {1, 3, 1}, {0, 1, 2}};
  const double x_ref[3] = {2.0, -1.0, 3.0};
  std::vector<double> b(3, 0.0);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      a.At(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) = m[r][c];
      b[static_cast<std::size_t>(r)] += m[r][c] * x_ref[c];
    }
  }
  SolveInPlace(a, b);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(b[static_cast<std::size_t>(i)], x_ref[i], 1e-12);
  }
}

TEST(DenseSolve, PivotsOnZeroDiagonal) {
  DenseMatrix a(2, 2);
  a.At(0, 0) = 0.0;
  a.At(0, 1) = 1.0;
  a.At(1, 0) = 1.0;
  a.At(1, 1) = 0.0;
  std::vector<double> b{3.0, 7.0};  // x = [7, 3]
  SolveInPlace(a, b);
  EXPECT_NEAR(b[0], 7.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(DenseSolve, ThrowsOnSingular) {
  DenseMatrix a(2, 2);
  a.At(0, 0) = 1.0;
  a.At(0, 1) = 2.0;
  a.At(1, 0) = 2.0;
  a.At(1, 1) = 4.0;
  std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(SolveInPlace(a, b), NumericalError);
}

TEST(BandedSolve, MatchesDenseOnTridiagonal) {
  const std::size_t n = 20;
  BandedMatrix band(n, 1);
  DenseMatrix dense(n, n);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    band.At(i, i) = 4.0;
    dense.At(i, i) = 4.0;
    if (i + 1 < n) {
      band.At(i, i + 1) = -1.0;
      band.At(i + 1, i) = -2.0;
      dense.At(i, i + 1) = -1.0;
      dense.At(i + 1, i) = -2.0;
    }
    b[i] = static_cast<double>(i) + 1.0;
  }
  std::vector<double> xb = b;
  band.SolveInPlace(xb);
  std::vector<double> xd = b;
  SolveInPlace(dense, xd);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(xb[i], xd[i], 1e-10);
  }
}

TEST(BandedSolve, WiderBandMatchesDense) {
  const std::size_t n = 30;
  const std::size_t hb = 3;
  BandedMatrix band(n, hb);
  DenseMatrix dense(n, n);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = (i > hb ? i - hb : 0); j <= std::min(n - 1, i + hb);
         ++j) {
      const double v = (i == j) ? 10.0 : 1.0 / (1.0 + std::abs(double(i) - double(j)));
      band.At(i, j) = v;
      dense.At(i, j) = v;
    }
    b[i] = std::sin(static_cast<double>(i));
  }
  std::vector<double> xb = b;
  band.SolveInPlace(xb);
  std::vector<double> xd = b;
  SolveInPlace(dense, xd);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(xb[i], xd[i], 1e-9);
  }
}

TEST(BandedMatrix, OutOfBandReadIsZeroWriteThrows) {
  BandedMatrix band(5, 1);
  const BandedMatrix& cband = band;
  EXPECT_EQ(cband.At(0, 3), 0.0);
  EXPECT_THROW(band.At(0, 3) = 1.0, NumericalError);
}

// ---------------------------------------------------------------------------
// MOSFET model
// ---------------------------------------------------------------------------

TEST(Mosfet, CutoffHasNoCurrent) {
  Mosfet m{MosType::kNmos, 1, 2, 3, {0.4, 1e-3, 0.0}};
  const MosEval eval = EvaluateMosfet(m, 1.0, 0.3, 0.0);  // vgs < vt
  EXPECT_NEAR(eval.ids, 0.0, 1e-9);
  EXPECT_EQ(eval.gm, 0.0);
}

TEST(Mosfet, SaturationCurrentMatchesSquareLaw) {
  const double beta = 2e-3;
  Mosfet m{MosType::kNmos, 1, 2, 3, {0.4, beta, 0.0}};
  // vgs = 1.0, vds = 1.2 > vov = 0.6 -> saturation
  const MosEval eval = EvaluateMosfet(m, 1.2, 1.0, 0.0);
  EXPECT_NEAR(eval.ids, 0.5 * beta * 0.6 * 0.6, 1e-12);
  EXPECT_NEAR(eval.gm, beta * 0.6, 1e-12);
}

TEST(Mosfet, TriodeCurrentMatchesFormula) {
  const double beta = 2e-3;
  Mosfet m{MosType::kNmos, 1, 2, 3, {0.4, beta, 0.0}};
  // vgs = 1.2, vov = 0.8, vds = 0.2 -> triode
  const MosEval eval = EvaluateMosfet(m, 0.2, 1.2, 0.0);
  EXPECT_NEAR(eval.ids, beta * (0.8 * 0.2 - 0.5 * 0.2 * 0.2), 1e-12);
}

TEST(Mosfet, SymmetricWhenTerminalsSwap) {
  // ids(d=a, s=b) == -ids(d=b, s=a)
  Mosfet m{MosType::kNmos, 1, 2, 3, {0.4, 1e-3, 0.0}};
  const MosEval fwd = EvaluateMosfet(m, 0.9, 1.2, 0.1);
  const MosEval rev = EvaluateMosfet(m, 0.1, 1.2, 0.9);
  EXPECT_NEAR(fwd.ids, -rev.ids, 1e-15);
}

TEST(Mosfet, PmosMirrorsNmos) {
  Mosfet n{MosType::kNmos, 1, 2, 3, {0.4, 1e-3, 0.0}};
  Mosfet p{MosType::kPmos, 1, 2, 3, {0.4, 1e-3, 0.0}};
  const MosEval en = EvaluateMosfet(n, 1.0, 1.2, 0.0);
  const MosEval ep = EvaluateMosfet(p, -1.0, -1.2, 0.0);
  EXPECT_NEAR(ep.ids, -en.ids, 1e-15);
  EXPECT_NEAR(std::abs(ep.gm), std::abs(en.gm), 1e-15);
}

TEST(Mosfet, DerivativesMatchFiniteDifference) {
  Mosfet m{MosType::kNmos, 1, 2, 3, {0.4, 1.5e-3, 0.05}};
  const double vd = 0.55;  // triode: vds = 0.45 < vov = 0.6
  const double vg = 1.1;
  const double vs = 0.1;
  const double h = 1e-7;
  const MosEval base = EvaluateMosfet(m, vd, vg, vs);
  const MosEval dg = EvaluateMosfet(m, vd, vg + h, vs);
  const MosEval dd = EvaluateMosfet(m, vd + h, vg, vs);
  EXPECT_NEAR((dg.ids - base.ids) / h, base.gm, 1e-4 * std::abs(base.gm) + 1e-9);
  EXPECT_NEAR((dd.ids - base.ids) / h, base.gds,
              1e-4 * std::abs(base.gds) + 1e-9);
}

// ---------------------------------------------------------------------------
// Netlist
// ---------------------------------------------------------------------------

TEST(Netlist, GroundAliases) {
  Netlist n;
  EXPECT_EQ(n.Node("0"), kGround);
  EXPECT_EQ(n.Node("gnd"), kGround);
}

TEST(Netlist, NodesAreInterned) {
  Netlist n;
  const NodeId a = n.Node("x");
  EXPECT_EQ(n.Node("x"), a);
  EXPECT_NE(n.Node("y"), a);
  EXPECT_EQ(n.NodeName(a), "x");
}

TEST(Netlist, NodeOrThrowRejectsUnknown) {
  Netlist n;
  EXPECT_THROW(n.NodeOrThrow("nope"), ConfigError);
}

TEST(Netlist, RejectsNonPositiveDevices) {
  Netlist n;
  const NodeId a = n.Node("a");
  EXPECT_THROW(n.AddResistor(a, kGround, 0.0), ConfigError);
  EXPECT_THROW(n.AddCapacitor(a, kGround, -1e-15), ConfigError);
}

TEST(Netlist, RejectsUnsortedPwl) {
  Netlist n;
  const NodeId a = n.Node("a");
  EXPECT_THROW(n.AddVpwl(a, kGround, {{1.0, 0.0}, {0.5, 1.0}}), ConfigError);
}

TEST(VoltageSourceWaveform, InterpolatesAndClamps) {
  VoltageSource src{1, 0, {{0.0, 0.0}, {1e-9, 1.0}}};
  EXPECT_DOUBLE_EQ(src.ValueAt(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(src.ValueAt(0.5e-9), 0.5);
  EXPECT_DOUBLE_EQ(src.ValueAt(2e-9), 1.0);
}

// ---------------------------------------------------------------------------
// Transient engine vs. closed-form RC answers
// ---------------------------------------------------------------------------

TEST(Transient, RcDischargeMatchesAnalytic) {
  // 1k / 1pF from 1V: v(t) = exp(-t/RC).
  Netlist n;
  const NodeId top = n.Node("top");
  n.AddResistor(top, kGround, 1e3);
  n.AddCapacitor(top, kGround, 1e-12);
  n.SetInitialCondition(top, 1.0);

  TransientOptions opt;
  opt.t_stop_s = 3e-9;
  opt.dt_s = 1e-12;
  const Waveform wave = RunTransient(n, opt, {"top"});

  const double rc = 1e3 * 1e-12;
  for (const double t : {0.5e-9, 1e-9, 2e-9}) {
    EXPECT_NEAR(wave.ValueAt("top", t), std::exp(-t / rc), 2e-3);
  }
}

TEST(Transient, RcChargeThroughSourceMatchesAnalytic) {
  // Source 1V -> R -> C: v(t) = 1 - exp(-t/RC).
  Netlist n;
  const NodeId vs = n.Node("vs");
  const NodeId top = n.Node("top");
  n.AddVdc(vs, kGround, 1.0);
  n.AddResistor(vs, top, 2e3);
  n.AddCapacitor(top, kGround, 1e-12);

  TransientOptions opt;
  opt.t_stop_s = 10e-9;
  opt.dt_s = 2e-12;
  const Waveform wave = RunTransient(n, opt, {"top"});

  const double rc = 2e3 * 1e-12;
  for (const double t : {1e-9, 3e-9, 6e-9}) {
    EXPECT_NEAR(wave.ValueAt("top", t), 1.0 - std::exp(-t / rc), 2e-3);
  }
}

TEST(Transient, BackwardEulerAlsoConverges) {
  Netlist n;
  const NodeId top = n.Node("top");
  n.AddResistor(top, kGround, 1e3);
  n.AddCapacitor(top, kGround, 1e-12);
  n.SetInitialCondition(top, 1.0);

  TransientOptions opt;
  opt.t_stop_s = 2e-9;
  opt.dt_s = 0.5e-12;
  opt.method = Integration::kBackwardEuler;
  const Waveform wave = RunTransient(n, opt, {"top"});
  const double rc = 1e-9;
  EXPECT_NEAR(wave.ValueAt("top", 1e-9), std::exp(-1.0), 5e-3);
}

TEST(Transient, CapacitiveDividerConservesCharge) {
  // Two caps joined through a resistor: final voltage is the
  // charge-weighted average (the charge-sharing primitive of Fig. 2b).
  Netlist n;
  const NodeId a = n.Node("a");
  const NodeId b = n.Node("b");
  n.AddCapacitor(a, kGround, 24e-15);
  n.AddCapacitor(b, kGround, 100e-15);
  n.AddResistor(a, b, 10e3);
  n.SetInitialCondition(a, 1.2);
  n.SetInitialCondition(b, 0.6);

  TransientOptions opt;
  opt.t_stop_s = 50e-9;
  opt.dt_s = 10e-12;
  const Waveform wave = RunTransient(n, opt, {"a", "b"});

  const double v_final = (24e-15 * 1.2 + 100e-15 * 0.6) / (124e-15);
  EXPECT_NEAR(wave.FinalValue("a"), v_final, 1e-3);
  EXPECT_NEAR(wave.FinalValue("b"), v_final, 1e-3);
}

TEST(Transient, PwlSourceDrivesNode) {
  Netlist n;
  const NodeId src = n.Node("src");
  n.AddVpwl(src, kGround, {{0.0, 0.0}, {1e-9, 1.0}});
  n.AddResistor(src, kGround, 1e6);  // keep the source loaded

  TransientOptions opt;
  opt.t_stop_s = 2e-9;
  opt.dt_s = 1e-12;
  const Waveform wave = RunTransient(n, opt, {"src"});
  EXPECT_NEAR(wave.ValueAt("src", 0.5e-9), 0.5, 1e-6);
  EXPECT_NEAR(wave.ValueAt("src", 1.5e-9), 1.0, 1e-9);
}

TEST(Transient, NmosFollowsGateAsSwitch) {
  // NMOS passing from a 1V source into a cap: output settles near
  // vg - vt (source-follower limit) when gate is not boosted.
  Netlist n;
  const NodeId vd = n.Node("vd");
  const NodeId vg = n.Node("vg");
  const NodeId out = n.Node("out");
  n.AddVdc(vd, kGround, 1.0);
  n.AddVpwl(vg, kGround, StepWaveform(0.0, 1.0, 0.1e-9, 20e-12));
  n.AddMosfet(MosType::kNmos, vd, vg, out, {0.4, 1e-3, 0.0});
  n.AddCapacitor(out, kGround, 10e-15);

  TransientOptions opt;
  opt.t_stop_s = 20e-9;
  opt.dt_s = 5e-12;
  const Waveform wave = RunTransient(n, opt, {"out"});
  EXPECT_NEAR(wave.FinalValue("out"), 0.6, 0.05);  // vg - vt = 0.6
}

TEST(Transient, RejectsNonGroundReferencedSource) {
  Netlist n;
  const NodeId a = n.Node("a");
  const NodeId b = n.Node("b");
  n.AddVdc(a, b, 1.0);
  n.AddResistor(a, b, 1e3);
  TransientOptions opt;
  EXPECT_THROW(RunTransient(n, opt, {"a"}), ConfigError);
}

TEST(Transient, RejectsDoublyDrivenNode) {
  Netlist n;
  const NodeId a = n.Node("a");
  n.AddVdc(a, kGround, 1.0);
  n.AddVdc(a, kGround, 2.0);
  TransientOptions opt;
  EXPECT_THROW(RunTransient(n, opt, {"a"}), ConfigError);
}

TEST(Transient, RejectsBadOptions) {
  Netlist n;
  n.AddResistor(n.Node("a"), kGround, 1.0);
  TransientOptions opt;
  opt.dt_s = 0.0;
  EXPECT_THROW(RunTransient(n, opt, {"a"}), ConfigError);
}

// ---------------------------------------------------------------------------
// DRAM circuits
// ---------------------------------------------------------------------------

TechnologyParams SmallTech() {
  TechnologyParams tech;
  tech.rows = 2048;
  tech.columns = 8;  // keep array tests fast
  return tech;
}

TEST(DataPatternHelpers, ValuesMatchDefinition) {
  EXPECT_FALSE(CellValue(DataPattern::kAllZeros, 3));
  EXPECT_TRUE(CellValue(DataPattern::kAllOnes, 3));
  EXPECT_FALSE(CellValue(DataPattern::kAlternating, 0));
  EXPECT_TRUE(CellValue(DataPattern::kAlternating, 1));
  // Random is deterministic per index.
  EXPECT_EQ(CellValue(DataPattern::kRandom, 5),
            CellValue(DataPattern::kRandom, 5));
  EXPECT_EQ(PatternName(DataPattern::kRandom), "rand");
}

TEST(EqualizationCircuit, BitlinesConvergeToVeq) {
  const TechnologyParams tech = SmallTech();
  EqualizationCircuit circuit = BuildEqualizationCircuit(tech, 20e-12);

  TransientOptions opt;
  opt.t_stop_s = 5e-9;
  opt.dt_s = 2e-12;
  const Waveform wave =
      RunTransient(circuit.netlist, opt, {circuit.bl, circuit.blb});

  EXPECT_NEAR(wave.FinalValue(circuit.bl), tech.Veq(), 0.02);
  EXPECT_NEAR(wave.FinalValue(circuit.blb), tech.Veq(), 0.02);
  // bl starts at Vdd and must decay monotonically toward Veq.
  EXPECT_NEAR(wave.ValueAt(circuit.bl, 0.0), tech.vdd, 1e-9);
  EXPECT_NEAR(wave.ValueAt(circuit.blb, 0.0), tech.vss, 1e-9);
}

TEST(EqualizationCircuit, ComplementConvergesFasterPhase) {
  // Fig. 5 observation: B̄ (rising from 0, device in triode) tracks all
  // models closely; B (falling from Vdd, device saturates first) is slower
  // to start.  Check the rising side reaches 90% of its swing earlier than
  // the falling side in the circuit reference.
  const TechnologyParams tech = SmallTech();
  EqualizationCircuit circuit = BuildEqualizationCircuit(tech, 0.0);

  TransientOptions opt;
  opt.t_stop_s = 5e-9;
  opt.dt_s = 2e-12;
  const Waveform wave =
      RunTransient(circuit.netlist, opt, {circuit.bl, circuit.blb});

  const double veq = tech.Veq();
  const double t_bl = wave.CrossingTime(circuit.bl, veq + 0.1 * (tech.vdd - veq),
                                        /*rising=*/false);
  const double t_blb = wave.CrossingTime(circuit.blb, veq - 0.1 * veq,
                                         /*rising=*/true);
  ASSERT_GT(t_bl, 0.0);
  ASSERT_GT(t_blb, 0.0);
  EXPECT_LT(t_blb, t_bl);
}

TEST(ChargeSharingArray, DevelopsExpectedSenseVoltage) {
  const TechnologyParams tech = SmallTech();
  ChargeSharingArray array =
      BuildChargeSharingArray(tech, DataPattern::kAllOnes, 1.0, 20e-12);

  TransientOptions opt;
  opt.t_stop_s = 30e-9;
  opt.dt_s = 10e-12;
  const Waveform wave = RunTransient(array.netlist, opt,
                                     {array.bitline_nodes[2],
                                      array.cell_nodes[2]});

  // Ideal charge sharing (no parasitics): dV = Cs/(Cs+Cbl) * (Vdd - Veq).
  // The circuit also sees the wordline-coupling boost through Cbw (the
  // wordline swings to Vpp) and mutual reinforcement through Cbb when all
  // neighbours store the same value, so dv may exceed the uncoupled ideal.
  const double ideal =
      tech.cs / (tech.cs + tech.Cbl()) * (tech.vdd - tech.Veq());
  const double dv = wave.FinalValue(array.bitline_nodes[2]) - tech.Veq();
  EXPECT_GT(dv, 0.5 * ideal);
  EXPECT_LT(dv, 1.6 * ideal);
  // Cell and bitline converge to the same level.
  EXPECT_NEAR(wave.FinalValue(array.bitline_nodes[2]),
              wave.FinalValue(array.cell_nodes[2]), 5e-3);
}

TEST(ChargeSharingArray, ZeroCellPullsBitlineDown) {
  const TechnologyParams tech = SmallTech();
  ChargeSharingArray array =
      BuildChargeSharingArray(tech, DataPattern::kAllZeros, 1.0, 20e-12);

  TransientOptions opt;
  opt.t_stop_s = 30e-9;
  opt.dt_s = 10e-12;
  const Waveform wave =
      RunTransient(array.netlist, opt, {array.bitline_nodes[0]});
  EXPECT_LT(wave.FinalValue(array.bitline_nodes[0]), tech.Veq());
}

TEST(RefreshPath, RestoresCellTowardFull) {
  const TechnologyParams tech = SmallTech();
  RefreshPathCircuit path =
      BuildRefreshPathCircuit(tech, /*cell_value=*/true,
                              /*initial_charge_fraction=*/0.7,
                              /*t_wordline_s=*/0.1e-9, /*t_sense_s=*/3e-9);

  TransientOptions opt;
  opt.t_stop_s = 40e-9;
  opt.dt_s = 10e-12;
  const Waveform wave =
      RunTransient(path.netlist, opt, {path.cell, path.bl, path.blb});

  // After sensing, the bitline pair splits to the rails and the cell is
  // restored above its initial 70% level.
  EXPECT_GT(wave.FinalValue(path.bl), 0.9 * tech.vdd);
  EXPECT_LT(wave.FinalValue(path.blb), 0.1 * tech.vdd);
  EXPECT_GT(wave.FinalValue(path.cell), 0.9 * tech.vdd);
}

TEST(RefreshPath, RestoresZeroCell) {
  const TechnologyParams tech = SmallTech();
  RefreshPathCircuit path =
      BuildRefreshPathCircuit(tech, /*cell_value=*/false,
                              /*initial_charge_fraction=*/1.0,
                              /*t_wordline_s=*/0.1e-9, /*t_sense_s=*/3e-9);

  TransientOptions opt;
  opt.t_stop_s = 40e-9;
  opt.dt_s = 10e-12;
  const Waveform wave =
      RunTransient(path.netlist, opt, {path.cell, path.bl, path.blb});

  EXPECT_LT(wave.FinalValue(path.bl), 0.1 * tech.vdd);
  EXPECT_GT(wave.FinalValue(path.blb), 0.9 * tech.vdd);
  EXPECT_LT(wave.FinalValue(path.cell), 0.1 * tech.vdd);
}

// ---------------------------------------------------------------------------
// DC operating point
// ---------------------------------------------------------------------------

TEST(DcOperatingPoint, ResistiveDivider) {
  Netlist n;
  const NodeId vs = n.Node("vs");
  const NodeId mid = n.Node("mid");
  n.AddVdc(vs, kGround, 1.2);
  n.AddResistor(vs, mid, 1e3);
  n.AddResistor(mid, kGround, 3e3);
  const auto op = SolveDc(n, DcOptions{});
  EXPECT_NEAR(op[mid], 0.9, 1e-6);
  EXPECT_NEAR(op[vs], 1.2, 1e-12);
}

TEST(DcOperatingPoint, CapacitorsAreOpen) {
  // With the cap open, no current flows: mid sits at the source voltage.
  Netlist n;
  const NodeId vs = n.Node("vs");
  const NodeId mid = n.Node("mid");
  n.AddVdc(vs, kGround, 1.0);
  n.AddResistor(vs, mid, 1e3);
  n.AddCapacitor(mid, kGround, 1e-12);
  const auto op = SolveDc(n, DcOptions{});
  EXPECT_NEAR(op[mid], 1.0, 1e-5);
}

TEST(DcOperatingPoint, SourceFollowerSettlesNearVgMinusVt) {
  Netlist n;
  const NodeId vd = n.Node("vd");
  const NodeId vg = n.Node("vg");
  const NodeId out = n.Node("out");
  n.AddVdc(vd, kGround, 1.2);
  n.AddVdc(vg, kGround, 1.0);
  n.AddMosfet(MosType::kNmos, vd, vg, out, {0.4, 1e-3, 0.0});
  n.AddResistor(out, kGround, 100e3);
  DcOptions options;
  const auto op = SolveDc(n, options);
  // Between cutoff (vg - vt) and the resistive pull-down equilibrium.
  EXPECT_GT(op[out], 0.4);
  EXPECT_LT(op[out], 0.6);
}

TEST(DcOperatingPoint, EvaluatesSourcesAtGivenTime) {
  Netlist n;
  const NodeId src = n.Node("src");
  n.AddVpwl(src, kGround, {{0.0, 0.0}, {1e-9, 1.0}});
  n.AddResistor(src, kGround, 1e3);
  DcOptions at_end;
  at_end.time_s = 2e-9;
  EXPECT_NEAR(SolveDc(n, at_end)[src], 1.0, 1e-12);
  DcOptions at_mid;
  at_mid.time_s = 0.5e-9;
  EXPECT_NEAR(SolveDc(n, at_mid)[src], 0.5, 1e-12);
}

TEST(Waveform, CrossingTimeInterpolates) {
  Waveform wave;
  wave.AddSignal("x");
  wave.Append(0.0, {0.0});
  wave.Append(1.0, {1.0});
  EXPECT_NEAR(wave.CrossingTime("x", 0.25, true), 0.25, 1e-12);
  EXPECT_LT(wave.CrossingTime("x", 2.0, true), 0.0);  // never crosses
}

TEST(Waveform, UnknownSignalThrows) {
  Waveform wave;
  wave.AddSignal("x");
  wave.Append(0.0, {0.0});
  EXPECT_THROW(wave.Samples("y"), ConfigError);
}

}  // namespace
}  // namespace vrl::circuit
