// Unit tests of the DRAM hierarchy layer: Topology address arithmetic, the
// named TimingTable presets, the active ConstraintEngine floors, and the
// passive TimingAuditor — including that the auditor actually *detects*
// each class of violation when fed an illegal stream (a detector that never
// fires would make the conformance CI job vacuous).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "dram/auditor.hpp"
#include "dram/timing_table.hpp"
#include "dram/topology.hpp"

namespace vrl::dram {
namespace {

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

TEST(Topology, CountsAreLevelProducts) {
  const Topology topo{2, 2, 4, 4};
  EXPECT_EQ(topo.TotalBanks(), 64u);
  EXPECT_EQ(topo.BanksPerRank(), 16u);
  EXPECT_EQ(topo.BanksPerChannel(), 32u);
  EXPECT_EQ(topo.TotalRanks(), 4u);
}

TEST(Topology, DegenerateMeansSingleChannelRankGroup) {
  EXPECT_TRUE((Topology{1, 1, 1, 8}.IsDegenerate()));
  EXPECT_TRUE((Topology{1, 1, 1, 1}.IsDegenerate()));
  EXPECT_FALSE((Topology{1, 2, 1, 8}.IsDegenerate()));
  EXPECT_FALSE((Topology{2, 1, 1, 8}.IsDegenerate()));
  EXPECT_FALSE((Topology{1, 1, 4, 4}.IsDegenerate()));
}

TEST(Topology, ValidateRejectsAnyZeroLevel) {
  EXPECT_THROW((Topology{0, 1, 1, 1}.Validate()), ConfigError);
  EXPECT_THROW((Topology{1, 0, 1, 1}.Validate()), ConfigError);
  EXPECT_THROW((Topology{1, 1, 0, 1}.Validate()), ConfigError);
  EXPECT_THROW((Topology{1, 1, 1, 0}.Validate()), ConfigError);
  EXPECT_NO_THROW((Topology{1, 1, 1, 1}.Validate()));
}

TEST(Topology, DecomposeFlattenRoundTripsEveryBank) {
  const Topology topo{2, 2, 4, 4};
  for (std::size_t flat = 0; flat < topo.TotalBanks(); ++flat) {
    const BankAddress addr = DecomposeBank(topo, flat);
    EXPECT_LT(addr.channel, topo.channels);
    EXPECT_LT(addr.rank, topo.ranks_per_channel);
    EXPECT_LT(addr.bank_group, topo.bank_groups_per_rank);
    EXPECT_LT(addr.bank, topo.banks_per_group);
    EXPECT_EQ(FlattenBank(topo, addr), flat);
  }
}

TEST(Topology, DecompositionIsChannelMajor) {
  const Topology topo{2, 2, 2, 2};
  EXPECT_EQ(DecomposeBank(topo, 0), (BankAddress{0, 0, 0, 0}));
  EXPECT_EQ(DecomposeBank(topo, 1), (BankAddress{0, 0, 0, 1}));
  EXPECT_EQ(DecomposeBank(topo, 2), (BankAddress{0, 0, 1, 0}));
  EXPECT_EQ(DecomposeBank(topo, 4), (BankAddress{0, 1, 0, 0}));
  EXPECT_EQ(DecomposeBank(topo, 8), (BankAddress{1, 0, 0, 0}));
  EXPECT_EQ(DecomposeBank(topo, 15), (BankAddress{1, 1, 1, 1}));
}

TEST(Topology, OutOfRangeAddressesThrow) {
  const Topology topo{1, 2, 1, 8};
  EXPECT_THROW(DecomposeBank(topo, topo.TotalBanks()), ConfigError);
  EXPECT_THROW(FlattenBank(topo, BankAddress{1, 0, 0, 0}), ConfigError);
  EXPECT_THROW(FlattenBank(topo, BankAddress{0, 2, 0, 0}), ConfigError);
  EXPECT_THROW(FlattenBank(topo, BankAddress{0, 0, 1, 0}), ConfigError);
  EXPECT_THROW(FlattenBank(topo, BankAddress{0, 0, 0, 8}), ConfigError);
}

// ---------------------------------------------------------------------------
// TimingTable presets
// ---------------------------------------------------------------------------

TEST(TimingPresets, NamesRoundTrip) {
  for (const TimingPreset preset : kAllTimingPresets) {
    EXPECT_EQ(PresetFromName(PresetName(preset)), preset);
  }
}

TEST(TimingPresets, ParsingIsCaseAndSeparatorInsensitive) {
  EXPECT_EQ(PresetFromName("ddr4-2400"), TimingPreset::kDdr4_2400);
  EXPECT_EQ(PresetFromName("DDR3_1600"), TimingPreset::kDdr3_1600);
  EXPECT_EQ(PresetFromName("lpddr43200"), TimingPreset::kLpddr4_3200);
  EXPECT_EQ(PresetFromName("flat"), TimingPreset::kSingleBankEquivalent);
  EXPECT_EQ(PresetFromName("single-bank-equivalent"),
            TimingPreset::kSingleBankEquivalent);
}

TEST(TimingPresets, UnknownNameThrowsWithCandidates) {
  try {
    PresetFromName("ddr5");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown timing preset"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("DDR4_2400"), std::string::npos);
  }
}

TEST(TimingPresets, SingleBankEquivalentIsTheFlatModel) {
  const TimingTable table = MakeTimingTable(TimingPreset::kSingleBankEquivalent, 6);
  EXPECT_EQ(table.topology, (Topology{1, 1, 1, 6}));
  EXPECT_FALSE(table.IsHierarchical());
  EXPECT_EQ(table.t_rrd_s, 0u);
  EXPECT_EQ(table.t_faw, 0u);
  EXPECT_EQ(table.t_ccd_l, 0u);
  EXPECT_EQ(table.t_rtrs, 0u);
  EXPECT_FALSE(table.per_channel_bus);
  EXPECT_THROW(MakeTimingTable(TimingPreset::kSingleBankEquivalent, 0),
               ConfigError);
}

TEST(TimingPresets, HardwarePresetsAreHierarchicalAndValid) {
  for (const TimingPreset preset :
       {TimingPreset::kDdr3_1600, TimingPreset::kDdr4_2400,
        TimingPreset::kLpddr4_3200}) {
    const TimingTable table = MakeTimingTable(preset);
    EXPECT_TRUE(table.IsHierarchical()) << PresetName(preset);
    EXPECT_TRUE(table.per_channel_bus) << PresetName(preset);
    EXPECT_NO_THROW(table.Validate()) << PresetName(preset);
    // The per-bank core timings stay the paper's for every preset.
    EXPECT_EQ(table.core.t_rcd, TimingParams{}.t_rcd) << PresetName(preset);
    EXPECT_EQ(table.core.t_refi, TimingParams{}.t_refi) << PresetName(preset);
  }
  EXPECT_EQ(MakeTimingTable(TimingPreset::kDdr3_1600).topology.TotalBanks(),
            16u);
  EXPECT_EQ(MakeTimingTable(TimingPreset::kDdr4_2400).topology.TotalBanks(),
            32u);
  EXPECT_EQ(MakeTimingTable(TimingPreset::kLpddr4_3200).topology.TotalBanks(),
            16u);
}

TEST(TimingPresets, Ddr4ValuesPinned) {
  // JESD79-4B-derived values at the 2.5 ns controller clock — pinned so a
  // silent preset edit cannot slip past review (docs/TOPOLOGY.md).
  const TimingTable t = MakeTimingTable(TimingPreset::kDdr4_2400);
  EXPECT_EQ(t.topology, (Topology{1, 2, 4, 4}));
  EXPECT_EQ(t.t_rrd_s, 3u);
  EXPECT_EQ(t.t_rrd_l, 4u);
  EXPECT_EQ(t.t_faw, 12u);
  EXPECT_EQ(t.t_ccd_s, 2u);
  EXPECT_EQ(t.t_ccd_l, 3u);
  EXPECT_EQ(t.t_rtrs, 2u);
  EXPECT_EQ(t.t_rfc, 140u);
}

TEST(TimingTable, ValidateRejectsInconsistentWindows) {
  TimingTable rrd = MakeTimingTable(TimingPreset::kDdr4_2400);
  rrd.t_rrd_l = rrd.t_rrd_s - 1;
  EXPECT_THROW(rrd.Validate(), ConfigError);

  TimingTable ccd = MakeTimingTable(TimingPreset::kDdr4_2400);
  ccd.t_ccd_l = ccd.t_ccd_s - 1;
  EXPECT_THROW(ccd.Validate(), ConfigError);

  TimingTable faw = MakeTimingTable(TimingPreset::kDdr4_2400);
  faw.t_faw = faw.t_rrd_l - 1;
  EXPECT_THROW(faw.Validate(), ConfigError);
}

TEST(TimingTable, EachKnobAloneMakesItHierarchical) {
  TimingTable table = MakeTimingTable(TimingPreset::kSingleBankEquivalent, 4);
  ASSERT_FALSE(table.IsHierarchical());
  for (Cycles TimingTable::*knob :
       {&TimingTable::t_rrd_s, &TimingTable::t_rrd_l, &TimingTable::t_faw,
        &TimingTable::t_ccd_s, &TimingTable::t_ccd_l, &TimingTable::t_rtrs}) {
    TimingTable probe = table;
    probe.*knob = 5;
    EXPECT_TRUE(probe.IsHierarchical());
  }
  TimingTable bus = table;
  bus.per_channel_bus = true;
  EXPECT_TRUE(bus.IsHierarchical());
  TimingTable topo = table;
  topo.topology = {1, 2, 1, 2};
  EXPECT_TRUE(topo.IsHierarchical());
}

// ---------------------------------------------------------------------------
// ConstraintEngine
// ---------------------------------------------------------------------------

TEST(ConstraintEngine, DegenerateTableIsIdentity) {
  const TimingTable table =
      MakeTimingTable(TimingPreset::kSingleBankEquivalent, 4);
  ConstraintEngine engine(table);
  const BankAddress a = DecomposeBank(table.topology, 1);
  engine.RecordActivate(a, 100);
  engine.RecordColumn(a, 110);
  engine.RecordBurst(a, 120, 124);
  EXPECT_EQ(engine.EarliestActivate(a, 101), 101u);
  EXPECT_EQ(engine.EarliestColumn(a, 111), 111u);
  EXPECT_EQ(engine.EarliestBurst(a, 121), 121u);
  EXPECT_EQ(engine.stats().TotalStalls(), 0u);
}

TEST(ConstraintEngine, TrrdFloorsSameGroupLongerThanCross) {
  const TimingTable table = MakeTimingTable(TimingPreset::kDdr4_2400);
  ConstraintEngine engine(table);
  const BankAddress g0{0, 0, 0, 0};
  const BankAddress g0b{0, 0, 0, 1};
  const BankAddress g1{0, 0, 1, 0};
  engine.RecordActivate(g0, 100);
  // Same bank group: tRRD_L = 4; different group: tRRD_S = 3.
  EXPECT_EQ(engine.EarliestActivate(g0b, 100), 104u);
  EXPECT_EQ(engine.EarliestActivate(g1, 100), 103u);
  EXPECT_EQ(engine.stats().trrd_stalls, 2u);
  EXPECT_EQ(engine.stats().trrd_stall_cycles, 4u + 3u);
  // Already past the window: no floor, no stall.
  EXPECT_EQ(engine.EarliestActivate(g0b, 104), 104u);
  EXPECT_EQ(engine.stats().trrd_stalls, 2u);
}

TEST(ConstraintEngine, OtherRankIsUnconstrained) {
  const TimingTable table = MakeTimingTable(TimingPreset::kDdr4_2400);
  ConstraintEngine engine(table);
  engine.RecordActivate(BankAddress{0, 0, 0, 0}, 100);
  EXPECT_EQ(engine.EarliestActivate(BankAddress{0, 1, 0, 0}, 100), 100u);
}

TEST(ConstraintEngine, TfawFloorsTheFifthActivate) {
  // DDR3: tRRD = 3, tFAW = 16, one bank group of 8 per rank.
  const TimingTable table = MakeTimingTable(TimingPreset::kDdr3_1600);
  ConstraintEngine engine(table);
  const auto bank = [](std::size_t b) { return BankAddress{0, 0, 0, b}; };
  for (std::size_t i = 0; i < 4; ++i) {
    engine.RecordActivate(bank(i), static_cast<Cycles>(3 * i));
  }
  // tRRD alone would allow cycle 12, but four ACTs at 0/3/6/9 occupy the
  // window until the first leaves at 0 + tFAW = 16.
  EXPECT_EQ(engine.EarliestActivate(bank(4), 12), 16u);
  EXPECT_EQ(engine.stats().tfaw_stalls, 1u);
  EXPECT_EQ(engine.stats().tfaw_stall_cycles, 4u);
}

TEST(ConstraintEngine, TccdFloorsColumnCommands) {
  const TimingTable table = MakeTimingTable(TimingPreset::kDdr4_2400);
  ConstraintEngine engine(table);
  engine.RecordColumn(BankAddress{0, 0, 0, 0}, 50);
  // Same group: tCCD_L = 3; different group: tCCD_S = 2.
  EXPECT_EQ(engine.EarliestColumn(BankAddress{0, 0, 0, 1}, 50), 53u);
  EXPECT_EQ(engine.EarliestColumn(BankAddress{0, 0, 1, 0}, 50), 52u);
  EXPECT_EQ(engine.stats().tccd_stalls, 2u);
}

TEST(ConstraintEngine, SharedBusSerializesBurstsAndChargesRtrs) {
  const TimingTable table = MakeTimingTable(TimingPreset::kDdr3_1600);
  ConstraintEngine engine(table);
  engine.RecordBurst(BankAddress{0, 0, 0, 0}, 100, 104);
  // Same rank: wait for the bus. Other rank: tRTRS = 2 on top.
  EXPECT_EQ(engine.EarliestBurst(BankAddress{0, 0, 0, 1}, 100), 104u);
  EXPECT_EQ(engine.EarliestBurst(BankAddress{0, 1, 0, 0}, 100), 106u);
  EXPECT_EQ(engine.stats().bus_stalls, 1u);
  EXPECT_EQ(engine.stats().trtrs_stalls, 1u);
  // A burst on the other channel would be independent — LPDDR4 has two.
  const TimingTable lp = MakeTimingTable(TimingPreset::kLpddr4_3200);
  ConstraintEngine lp_engine(lp);
  lp_engine.RecordBurst(BankAddress{0, 0, 0, 0}, 100, 104);
  EXPECT_EQ(lp_engine.EarliestBurst(BankAddress{1, 0, 0, 0}, 100), 100u);
}

TEST(ConstraintEngine, PerBankBusNeverFloorsBursts) {
  TimingTable table = MakeTimingTable(TimingPreset::kDdr3_1600);
  table.per_channel_bus = false;
  ConstraintEngine engine(table);
  engine.RecordBurst(BankAddress{0, 0, 0, 0}, 100, 104);
  EXPECT_EQ(engine.EarliestBurst(BankAddress{0, 0, 0, 1}, 100), 100u);
  EXPECT_EQ(engine.stats().bus_stalls, 0u);
}

TEST(ConstraintEngine, FloorsStayConservativeUnderOutOfOrderRecording) {
  // The controller interleaves banks by decision instant, which only
  // approximates issue order — a later Record* call may carry an earlier
  // cycle.  The engine must keep the *latest* ACT per group, not the last
  // recorded one.
  const TimingTable table = MakeTimingTable(TimingPreset::kDdr4_2400);
  ConstraintEngine engine(table);
  engine.RecordActivate(BankAddress{0, 0, 0, 0}, 100);
  engine.RecordActivate(BankAddress{0, 0, 0, 1}, 90);  // out of order
  EXPECT_EQ(engine.EarliestActivate(BankAddress{0, 0, 0, 2}, 100), 104u);
  engine.RecordColumn(BankAddress{0, 0, 0, 0}, 200);
  engine.RecordColumn(BankAddress{0, 0, 0, 1}, 190);
  EXPECT_EQ(engine.EarliestColumn(BankAddress{0, 0, 0, 2}, 200), 203u);
}

TEST(ConstraintEngine, TracksPerRankAndPerChannelActivity) {
  const TimingTable table = MakeTimingTable(TimingPreset::kDdr4_2400);
  ConstraintEngine engine(table);
  engine.RecordActivate(BankAddress{0, 0, 0, 0}, 0);
  engine.RecordActivate(BankAddress{0, 1, 0, 0}, 50);
  engine.RecordActivate(BankAddress{0, 1, 1, 0}, 100);
  engine.RecordColumn(BankAddress{0, 1, 1, 0}, 110);
  engine.RecordBurst(BankAddress{0, 1, 1, 0}, 120, 124);
  const HierarchyActivity& activity = engine.activity();
  ASSERT_EQ(activity.rank_activations.size(), 2u);
  EXPECT_EQ(activity.rank_activations[0], 1u);
  EXPECT_EQ(activity.rank_activations[1], 2u);
  EXPECT_EQ(activity.rank_columns[1], 1u);
  ASSERT_EQ(activity.channel_bursts.size(), 1u);
  EXPECT_EQ(activity.channel_bursts[0], 1u);
}

// ---------------------------------------------------------------------------
// TimingAuditor
// ---------------------------------------------------------------------------

TEST(Auditor, CommandMnemonics) {
  EXPECT_EQ(CommandName(CommandKind::kActivate), "ACT");
  EXPECT_EQ(CommandName(CommandKind::kRead), "RD");
  EXPECT_EQ(CommandName(CommandKind::kWrite), "WR");
  EXPECT_EQ(CommandName(CommandKind::kPrecharge), "PRE");
  EXPECT_EQ(CommandName(CommandKind::kRefresh), "REF");
}

Command Cmd(Cycles at, CommandKind kind, const BankAddress& addr,
            Cycles trfc = 0) {
  Command c;
  c.at = at;
  c.kind = kind;
  c.addr = addr;
  c.trfc = trfc;
  return c;
}

TEST(Auditor, LegalStreamAuditsClean) {
  // Core timings: tRCD 10, tRAS 28, tRP 10, tCAS 10, tBUS 4.
  const TimingAuditor auditor(MakeTimingTable(TimingPreset::kDdr3_1600));
  const BankAddress b0{0, 0, 0, 0};
  const BankAddress b1{0, 0, 0, 1};
  CommandLog log;
  log.Append(Cmd(0, CommandKind::kActivate, b0));
  log.Append(Cmd(10, CommandKind::kRead, b0));    // tRCD met; burst [20,24)
  log.Append(Cmd(4, CommandKind::kActivate, b1)); // tRRD 3 < 4: fine
  log.Append(Cmd(14, CommandKind::kRead, b1));    // tCCD 2; burst [24,28)
  log.Append(Cmd(28, CommandKind::kPrecharge, b0));  // tRAS exactly met
  log.Append(Cmd(38, CommandKind::kActivate, b0));   // tRP exactly met
  const AuditReport report = auditor.Audit(log);
  EXPECT_TRUE(report.clean()) << report.ToText("test");
  EXPECT_EQ(report.commands_checked, 6u);
}

TEST(Auditor, DetectsTrrdViolation) {
  const TimingAuditor auditor(MakeTimingTable(TimingPreset::kDdr3_1600));
  CommandLog log;
  log.Append(Cmd(0, CommandKind::kActivate, BankAddress{0, 0, 0, 0}));
  log.Append(Cmd(1, CommandKind::kActivate, BankAddress{0, 0, 0, 1}));
  const AuditReport report = auditor.Audit(log);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].rule, "tRRD_L");  // DDR3: one group
  EXPECT_EQ(report.violations[0].at, 1u);
}

TEST(Auditor, DistinguishesShortAndLongRrd) {
  const TimingAuditor auditor(MakeTimingTable(TimingPreset::kDdr4_2400));
  CommandLog log;
  log.Append(Cmd(0, CommandKind::kActivate, BankAddress{0, 0, 0, 0}));
  log.Append(Cmd(3, CommandKind::kActivate, BankAddress{0, 0, 0, 1}));
  // Same group at +3 violates tRRD_L = 4; a different group at +3 meets
  // tRRD_S = 3.
  log.Append(Cmd(6, CommandKind::kActivate, BankAddress{0, 0, 1, 0}));
  const AuditReport report = auditor.Audit(log);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].rule, "tRRD_L");
  EXPECT_EQ(report.violations[0].addr, (BankAddress{0, 0, 0, 1}));
}

TEST(Auditor, DetectsFifthActivateInFawWindow) {
  // tRRD-legal spacing (3) but five ACTs inside tFAW = 16.
  const TimingAuditor auditor(MakeTimingTable(TimingPreset::kDdr3_1600));
  CommandLog log;
  for (std::size_t i = 0; i < 5; ++i) {
    log.Append(Cmd(static_cast<Cycles>(3 * i), CommandKind::kActivate,
                   BankAddress{0, 0, 0, i}));
  }
  const AuditReport report = auditor.Audit(log);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].rule, "tFAW");
  EXPECT_EQ(report.violations[0].at, 12u);
}

TEST(Auditor, DetectsTrcdAndTrasAndTrpViolations) {
  const TimingAuditor auditor(MakeTimingTable(TimingPreset::kDdr3_1600));
  const BankAddress b{0, 0, 0, 0};
  CommandLog log;
  log.Append(Cmd(0, CommandKind::kActivate, b));
  log.Append(Cmd(5, CommandKind::kRead, b));        // tRCD 10 violated
  log.Append(Cmd(20, CommandKind::kPrecharge, b));  // tRAS 28 violated
  log.Append(Cmd(25, CommandKind::kActivate, b));   // tRP 10 violated
  const AuditReport report = auditor.Audit(log);
  ASSERT_EQ(report.violations.size(), 3u);
  EXPECT_EQ(report.violations[0].rule, "tRCD");
  EXPECT_EQ(report.violations[1].rule, "tRAS");
  EXPECT_EQ(report.violations[2].rule, "tRP");
}

TEST(Auditor, DetectsWriteRecoveryViolation) {
  const TimingAuditor auditor(MakeTimingTable(TimingPreset::kDdr3_1600));
  const BankAddress b{0, 0, 0, 0};
  CommandLog log;
  log.Append(Cmd(0, CommandKind::kActivate, b));
  log.Append(Cmd(10, CommandKind::kWrite, b));  // burst [20, 24)
  // tRAS (28) is met but tWR needs 24 + 12 = 36.
  log.Append(Cmd(30, CommandKind::kPrecharge, b));
  const AuditReport report = auditor.Audit(log);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].rule, "tWR");
}

TEST(Auditor, DetectsBusOverlapAndRankTurnaround) {
  const TimingAuditor auditor(MakeTimingTable(TimingPreset::kDdr3_1600));
  CommandLog log;
  log.Append(Cmd(0, CommandKind::kActivate, BankAddress{0, 0, 0, 0}));
  log.Append(Cmd(4, CommandKind::kActivate, BankAddress{0, 0, 0, 1}));
  log.Append(Cmd(20, CommandKind::kRead, BankAddress{0, 0, 0, 0}));
  // Burst [30,34); a second read at 22 bursts [32,36) — overlap.
  log.Append(Cmd(22, CommandKind::kRead, BankAddress{0, 0, 0, 1}));
  const AuditReport overlap = auditor.Audit(log);
  ASSERT_EQ(overlap.violations.size(), 1u);
  EXPECT_EQ(overlap.violations[0].rule, "bus-overlap");

  CommandLog turnaround;
  turnaround.Append(Cmd(0, CommandKind::kActivate, BankAddress{0, 0, 0, 0}));
  turnaround.Append(Cmd(0, CommandKind::kActivate, BankAddress{0, 1, 0, 0}));
  turnaround.Append(Cmd(20, CommandKind::kRead, BankAddress{0, 0, 0, 0}));
  // Other rank's burst [35,39) starts 1 cycle after [30,34) ends; tRTRS = 2.
  turnaround.Append(Cmd(25, CommandKind::kRead, BankAddress{0, 1, 0, 0}));
  const AuditReport rtrs = auditor.Audit(turnaround);
  ASSERT_EQ(rtrs.violations.size(), 1u);
  EXPECT_EQ(rtrs.violations[0].rule, "tRTRS");
}

TEST(Auditor, DetectsCommandDuringRefresh) {
  const TimingAuditor auditor(MakeTimingTable(TimingPreset::kDdr3_1600));
  const BankAddress b{0, 0, 0, 0};
  CommandLog log;
  log.Append(Cmd(100, CommandKind::kRefresh, b, /*trfc=*/50));
  log.Append(Cmd(120, CommandKind::kActivate, b));  // inside [100, 150)
  const AuditReport report = auditor.Audit(log);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].rule, "refresh-occupancy");

  CommandLog zero;
  zero.Append(Cmd(0, CommandKind::kRefresh, b, /*trfc=*/0));
  const AuditReport zero_report = auditor.Audit(zero);
  ASSERT_EQ(zero_report.violations.size(), 1u);
  EXPECT_EQ(zero_report.violations[0].rule, "refresh-zero-trfc");
}

TEST(Auditor, SubarraysAuditIndependently) {
  // A refresh holds one subarray; the other subarray of the same bank stays
  // usable (SALP).
  const TimingAuditor auditor(MakeTimingTable(TimingPreset::kDdr3_1600));
  const BankAddress b{0, 0, 0, 0};
  Command ref = Cmd(100, CommandKind::kRefresh, b, /*trfc=*/50);
  ref.subarray = 0;
  Command act = Cmd(120, CommandKind::kActivate, b);
  act.subarray = 1;
  CommandLog log;
  log.Append(ref);
  log.Append(act);
  EXPECT_TRUE(auditor.Audit(log).clean());
}

TEST(Auditor, SortsAnUnorderedLogBeforeReplay) {
  const TimingAuditor auditor(MakeTimingTable(TimingPreset::kDdr3_1600));
  const BankAddress b{0, 0, 0, 0};
  CommandLog log;  // appended in reverse cycle order
  log.Append(Cmd(38, CommandKind::kActivate, b));
  log.Append(Cmd(28, CommandKind::kPrecharge, b));
  log.Append(Cmd(10, CommandKind::kRead, b));
  log.Append(Cmd(0, CommandKind::kActivate, b));
  EXPECT_TRUE(auditor.Audit(log).clean());
}

TEST(Auditor, ReportTextIsPinned) {
  AuditReport report;
  report.commands_checked = 3;
  report.violations.push_back(
      {42, "tRRD_L", BankAddress{0, 1, 2, 3}, "need >= 44 (last ACT 40)"});
  EXPECT_EQ(report.ToText("DDR4_2400"),
            "# vrl timing audit v1\n"
            "# preset=DDR4_2400 commands=3 violations=1\n"
            "violation at=42 rule=tRRD_L ch=0 rk=1 bg=2 bk=3 "
            "need >= 44 (last ACT 40)\n"
            "# end\n");
  AuditReport clean;
  clean.commands_checked = 7;
  EXPECT_EQ(clean.ToText("flat"),
            "# vrl timing audit v1\n"
            "# preset=flat commands=7 violations=0\n"
            "# end\n");
}

TEST(Auditor, ViolationsAreCycleOrdered) {
  const TimingAuditor auditor(MakeTimingTable(TimingPreset::kDdr3_1600));
  CommandLog log;
  // Two independent violations logged out of order.
  log.Append(Cmd(50, CommandKind::kActivate, BankAddress{0, 0, 0, 2}));
  log.Append(Cmd(51, CommandKind::kActivate, BankAddress{0, 0, 0, 3}));
  log.Append(Cmd(0, CommandKind::kActivate, BankAddress{0, 0, 0, 0}));
  log.Append(Cmd(1, CommandKind::kActivate, BankAddress{0, 0, 0, 1}));
  const AuditReport report = auditor.Audit(log);
  ASSERT_EQ(report.violations.size(), 2u);
  EXPECT_LT(report.violations[0].at, report.violations[1].at);
}

TEST(Auditor, WriteAuditReportRoundTrips) {
  AuditReport report;
  report.commands_checked = 5;
  const std::string path = ::testing::TempDir() + "/vrl_audit_roundtrip.log";
  WriteAuditReport(report, "DDR3_1600", path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in);
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), report.ToText("DDR3_1600"));
  std::remove(path.c_str());
  EXPECT_THROW(
      WriteAuditReport(report, "DDR3_1600", "/nonexistent-dir/audit.log"),
      ConfigError);
}

}  // namespace
}  // namespace vrl::dram
