// Cross-module integration tests: the analytical model validated against
// the transient circuit engine, and the end-to-end data-integrity
// guarantees of the VRL mechanism (including guardband and VRT scenarios).

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/dram_circuits.hpp"
#include "circuit/transient.hpp"
#include "core/integrity.hpp"
#include "core/vrl_system.hpp"
#include "model/equalization.hpp"
#include "model/presensing.hpp"
#include "retention/temperature.hpp"
#include "retention/vrt.hpp"

namespace vrl {
namespace {

// ---------------------------------------------------------------------------
// Analytical model vs. circuit reference
// ---------------------------------------------------------------------------

class ModelVsCircuit : public ::testing::TestWithParam<std::size_t> {
 protected:
  TechnologyParams Tech() const {
    TechnologyParams tech;
    tech.rows = GetParam();
    tech.columns = 8;  // keep the transient fast
    return tech;
  }
};

TEST_P(ModelVsCircuit, EqualizationSettleTimesAgree) {
  const TechnologyParams tech = Tech();
  const model::EqualizationModel eq(tech);

  auto circuit = circuit::BuildEqualizationCircuit(tech, 0.0);
  circuit::TransientOptions options;
  options.t_stop_s = 4.0 * eq.EqualizationDelay() + 2e-9;
  options.dt_s = 2e-12;
  const auto wave =
      circuit::RunTransient(circuit.netlist, options, {circuit.bl});

  // Time for the high bitline to come within 20 mV of Veq.
  const double target = tech.Veq() + 0.02;
  const double t_circuit =
      wave.CrossingTime(circuit.bl, target, /*rising=*/false);
  const double t_model = eq.SettleTime(model::BitlineSide::kHigh, 0.02);
  ASSERT_GT(t_circuit, 0.0);
  // Within a factor of two across geometries (the model lumps the
  // distributed bitline; exact agreement is not expected).
  EXPECT_LT(t_model, 2.0 * t_circuit);
  EXPECT_GT(t_model, 0.5 * t_circuit);
}

TEST_P(ModelVsCircuit, ChargeSharingSwingAgrees) {
  // Compare with the wordline coupling channel disabled: the paper's Eq. 7
  // treats Cbw purely as extra load, while the circuit also sees the boost
  // a rising wordline injects through it — a real divergence that grows
  // with Cbl and is not what this test is about.
  TechnologyParams tech = Tech();
  tech.cbw_ratio = 0.0;
  const model::PreSensingModel pre(tech);

  auto array = circuit::BuildChargeSharingArray(
      tech, DataPattern::kAllOnes, 1.0, 20e-12);
  circuit::TransientOptions options;
  options.t_stop_s = 30e-9;
  options.dt_s = 20e-12;
  const std::size_t mid = tech.columns / 2;
  const auto wave =
      circuit::RunTransient(array.netlist, options, {array.bitline_nodes[mid]});

  const double dv_circuit =
      wave.FinalValue(array.bitline_nodes[mid]) - tech.Veq();
  const auto dv_model =
      pre.SenseVoltagesForPattern(DataPattern::kAllOnes, 1.0)[mid];
  EXPECT_NEAR(dv_circuit, dv_model, 0.25 * dv_circuit);
  EXPECT_GT(dv_circuit, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Rows, ModelVsCircuit,
                         ::testing::Values(std::size_t{2048},
                                           std::size_t{8192},
                                           std::size_t{16384}));

// ---------------------------------------------------------------------------
// End-to-end integrity of the VRL mechanism
// ---------------------------------------------------------------------------

class IntegrityAtProfilingConditions
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntegrityAtProfilingConditions, AllPoliciesAreLossFree) {
  core::VrlConfig config;
  config.banks = 1;
  config.seed = GetParam();
  const core::VrlSystem system(config);
  const core::IntegrityChecker checker(system);

  for (const auto kind : {core::PolicyKind::kJedec, core::PolicyKind::kRaidr,
                          core::PolicyKind::kVrl,
                          core::PolicyKind::kVrlAccess}) {
    const auto report = checker.Check(kind, 8);
    EXPECT_FALSE(report.DataLost()) << core::PolicyName(kind);
    EXPECT_GT(report.refreshes_checked, 0u);
    EXPECT_GE(report.min_margin, -1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegrityAtProfilingConditions,
                         ::testing::Values(42u, 7u, 1234u));

TEST(Integrity, ExceedingMprsfLosesData) {
  core::VrlConfig config;
  config.banks = 1;
  const core::VrlSystem system(config);

  std::vector<std::size_t> aggressive;
  aggressive.reserve(system.row_mprsf().size());
  for (const auto m : system.row_mprsf()) {
    aggressive.push_back(m + 1);
  }
  const core::IntegrityChecker checker(system);
  const auto report = checker.CheckWithMprsf(aggressive, 8);
  EXPECT_TRUE(report.DataLost());
  EXPECT_GT(report.failures, 100u);
}

TEST(Integrity, VrlUsesPartialsButStaysSafe) {
  core::VrlConfig config;
  config.banks = 1;
  const core::VrlSystem system(config);
  const core::IntegrityChecker checker(system);
  const auto report = checker.Check(core::PolicyKind::kVrl, 8);
  EXPECT_GT(report.partial_refreshes, report.refreshes_checked / 4);
  EXPECT_FALSE(report.DataLost());
}

TEST(Integrity, HotterThanProfilingLosesDataWithoutGuardband) {
  core::VrlConfig config;
  config.banks = 1;
  const core::VrlSystem system(config);
  const retention::TemperatureModel temperature;
  const core::IntegrityChecker checker(system,
                                       temperature.RetentionScale(55.0));
  EXPECT_TRUE(checker.Check(core::PolicyKind::kVrl, 8).DataLost());
}

TEST(Integrity, GuardbandCoversItsRatedTemperature) {
  core::VrlConfig config;
  config.banks = 1;
  config.retention_guardband = 2.0;
  const core::VrlSystem system(config);
  const retention::TemperatureModel temperature;
  // 2x guardband is rated to 55C; check a temperature safely inside, and
  // ignore the clamped weak rows (they are reported as unprotected).
  const double scale = temperature.RetentionScale(52.0);
  const core::IntegrityChecker checker(system, scale);
  const auto report = checker.Check(core::PolicyKind::kVrl, 8);
  // Failures, if any, must be attributable to clamped rows only.
  EXPECT_LE(report.failures, system.guardband_clamped_rows() * 200);
  if (system.guardband_clamped_rows() == 0) {
    EXPECT_FALSE(report.DataLost());
  }
}

TEST(Integrity, WorstCaseVrtNeedsGuardband) {
  retention::VrtParams vrt;
  vrt.low_ratio = 0.6;
  vrt.row_fraction = 0.05;

  core::VrlConfig config;
  config.banks = 1;
  const core::VrlSystem unguarded(config);
  Rng rng(3);
  const auto vrt_rows =
      retention::SampleVrtRows(vrt, unguarded.profile().rows(), rng);
  const auto runtime = retention::WorstCaseRuntimeProfile(
      unguarded.profile(), vrt_rows, vrt);

  // Without a guardband the VRT rows fail...
  const core::IntegrityChecker bare(unguarded, runtime);
  EXPECT_TRUE(bare.Check(core::PolicyKind::kVrl, 8).DataLost());

  // ...with a guardband covering the VRT low ratio they do not (modulo
  // clamped weak rows).
  core::VrlConfig guarded_config = config;
  guarded_config.retention_guardband = 1.0 / vrt.low_ratio;
  const core::VrlSystem guarded(guarded_config);
  Rng rng2(3);
  const auto guarded_vrt_rows =
      retention::SampleVrtRows(vrt, guarded.profile().rows(), rng2);
  const auto guarded_runtime = retention::WorstCaseRuntimeProfile(
      guarded.profile(), guarded_vrt_rows, vrt);
  const core::IntegrityChecker safe(guarded, guarded_runtime);
  const auto report = safe.Check(core::PolicyKind::kVrl, 8);
  EXPECT_LE(report.failures, guarded.guardband_clamped_rows() * 200);
}

TEST(IntegrityChecker, RejectsBadInputs) {
  core::VrlConfig config;
  config.banks = 1;
  const core::VrlSystem system(config);
  EXPECT_THROW(core::IntegrityChecker(system, 0.0), ConfigError);
  EXPECT_THROW(core::IntegrityChecker(system).Check(core::PolicyKind::kVrl, 0),
               ConfigError);
  const retention::RetentionProfile wrong_size({1.0, 2.0});
  EXPECT_THROW(core::IntegrityChecker(system, wrong_size), ConfigError);
  std::vector<std::size_t> wrong_mprsf(3, 1);
  EXPECT_THROW(core::IntegrityChecker(system).CheckWithMprsf(wrong_mprsf, 4),
               ConfigError);
}

// ---------------------------------------------------------------------------
// Guardband planning properties
// ---------------------------------------------------------------------------

class GuardbandProperty : public ::testing::TestWithParam<double> {};

TEST_P(GuardbandProperty, MoreGuardMoreOverheadMoreClamped) {
  core::VrlConfig base;
  base.banks = 1;
  const core::VrlSystem plain(base);

  core::VrlConfig guarded_config = base;
  guarded_config.retention_guardband = GetParam();
  const core::VrlSystem guarded(guarded_config);

  EXPECT_GE(guarded.guardband_clamped_rows(),
            plain.guardband_clamped_rows());

  const Cycles horizon = plain.HorizonForWindows(8);
  const double plain_overhead =
      plain.Simulate(core::PolicyKind::kVrl, {}, horizon)
          .RefreshOverheadPerBank();
  const double guarded_overhead =
      guarded.Simulate(core::PolicyKind::kVrl, {}, horizon)
          .RefreshOverheadPerBank();
  EXPECT_GE(guarded_overhead, plain_overhead * 0.999);
}

INSTANTIATE_TEST_SUITE_P(Guards, GuardbandProperty,
                         ::testing::Values(1.2, 1.5, 2.0));

TEST(GuardbandConfig, RejectsBelowOne) {
  core::VrlConfig config;
  config.retention_guardband = 0.9;
  EXPECT_THROW(config.Validate(), ConfigError);
}

}  // namespace
}  // namespace vrl
