#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/interpolation.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/technology.hpp"
#include "common/tridiagonal.hpp"
#include "common/units.hpp"

namespace vrl {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, IsDeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DiffersAcrossSeeds) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformDoubleMeanIsHalf) {
  Rng rng(123);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.UniformDouble();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntRespectsBound) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.UniformInt(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit over 1000 draws
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(99);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, LogNormalIsPositive) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.LogNormal(0.0, 1.0), 0.0);
  }
}

TEST(Rng, BernoulliProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(4.0);
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(3);
  Rng a = parent.Fork(0);
  Rng b = parent.Fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

// ---------------------------------------------------------------------------
// Tridiagonal solver
// ---------------------------------------------------------------------------

TEST(Tridiagonal, SolvesIdentity) {
  TridiagonalSystem sys;
  sys.diag = {1.0, 1.0, 1.0};
  sys.lower = {0.0, 0.0};
  sys.upper = {0.0, 0.0};
  sys.rhs = {3.0, -2.0, 5.0};
  const auto x = SolveTridiagonal(sys);
  ASSERT_EQ(x.size(), 3u);
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], -2.0);
  EXPECT_DOUBLE_EQ(x[2], 5.0);
}

TEST(Tridiagonal, SolvesKnownSystem) {
  // [2 1 0; 1 2 1; 0 1 2] x = [4; 8; 8] -> x = [1; 2; 3]
  TridiagonalSystem sys;
  sys.diag = {2.0, 2.0, 2.0};
  sys.lower = {1.0, 1.0};
  sys.upper = {1.0, 1.0};
  sys.rhs = {4.0, 8.0, 8.0};
  const auto x = SolveTridiagonal(sys);
  ASSERT_EQ(x.size(), 3u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(Tridiagonal, SingleElement) {
  TridiagonalSystem sys;
  sys.diag = {4.0};
  sys.rhs = {8.0};
  const auto x = SolveTridiagonal(sys);
  ASSERT_EQ(x.size(), 1u);
  EXPECT_DOUBLE_EQ(x[0], 2.0);
}

TEST(Tridiagonal, EmptySystemReturnsEmpty) {
  TridiagonalSystem sys;
  EXPECT_TRUE(SolveTridiagonal(sys).empty());
}

TEST(Tridiagonal, ThrowsOnDimensionMismatch) {
  TridiagonalSystem sys;
  sys.diag = {1.0, 1.0};
  sys.lower = {0.0};
  sys.upper = {0.0};
  sys.rhs = {1.0};  // wrong size
  EXPECT_THROW(SolveTridiagonal(sys), NumericalError);
}

TEST(Tridiagonal, ThrowsOnSingular) {
  TridiagonalSystem sys;
  sys.diag = {0.0};
  sys.rhs = {1.0};
  EXPECT_THROW(SolveTridiagonal(sys), NumericalError);
}

TEST(Tridiagonal, CouplingSystemReducesToScalingWithoutCoupling) {
  // k2 = 0 -> v = k1 * lself.
  const std::vector<double> lself{0.5, 0.6, 0.7};
  const auto v = SolveCouplingSystem(0.2, 0.0, lself);
  ASSERT_EQ(v.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(v[i], 0.2 * lself[i], 1e-14);
  }
}

TEST(Tridiagonal, CouplingIncreasesUniformSenseVoltage) {
  // With equal Lself everywhere and positive K2, the coupled solution
  // exceeds the uncoupled one in the interior (neighbours pull together).
  const std::vector<double> lself(9, 0.6);
  const double k1 = 0.1;
  const double k2 = 0.03;
  const auto coupled = SolveCouplingSystem(k1, k2, lself);
  const auto uncoupled = SolveCouplingSystem(k1, 0.0, lself);
  EXPECT_GT(coupled[4], uncoupled[4]);
}

TEST(Tridiagonal, CouplingMatchesDenseSolveSmallCase) {
  // Hand-check against the explicit 2x2 inverse:
  // [1 -k2; -k2 1] v = k1*l  ->  v0 = k1*(l0 + k2*l1)/(1-k2^2)
  const double k1 = 0.15;
  const double k2 = 0.05;
  const std::vector<double> l{0.4, 0.8};
  const auto v = SolveCouplingSystem(k1, k2, l);
  const double denom = 1.0 - k2 * k2;
  EXPECT_NEAR(v[0], k1 * (l[0] + k2 * l[1]) / denom, 1e-14);
  EXPECT_NEAR(v[1], k1 * (l[1] + k2 * l[0]) / denom, 1e-14);
}

// ---------------------------------------------------------------------------
// PiecewiseLinear
// ---------------------------------------------------------------------------

TEST(PiecewiseLinear, InterpolatesBetweenSamples) {
  PiecewiseLinear f({0.0, 1.0, 2.0}, {0.0, 10.0, 40.0});
  EXPECT_DOUBLE_EQ(f(0.5), 5.0);
  EXPECT_DOUBLE_EQ(f(1.5), 25.0);
}

TEST(PiecewiseLinear, ClampsOutsideRange) {
  PiecewiseLinear f({0.0, 1.0}, {2.0, 3.0});
  EXPECT_DOUBLE_EQ(f(-5.0), 2.0);
  EXPECT_DOUBLE_EQ(f(9.0), 3.0);
}

TEST(PiecewiseLinear, InverseLookupFindsCrossing) {
  PiecewiseLinear f({0.0, 1.0, 2.0}, {0.0, 10.0, 40.0});
  EXPECT_DOUBLE_EQ(f.InverseLookup(5.0), 0.5);
  EXPECT_DOUBLE_EQ(f.InverseLookup(25.0), 1.5);
}

TEST(PiecewiseLinear, InverseLookupClamps) {
  PiecewiseLinear f({0.0, 1.0}, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(f.InverseLookup(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.InverseLookup(5.0), 1.0);
}

TEST(PiecewiseLinear, RejectsNonMonotoneX) {
  EXPECT_THROW(PiecewiseLinear({0.0, 0.0}, {1.0, 2.0}), NumericalError);
  EXPECT_THROW(PiecewiseLinear({1.0, 0.0}, {1.0, 2.0}), NumericalError);
}

TEST(PiecewiseLinear, RejectsEmptyOrMismatched) {
  EXPECT_THROW(PiecewiseLinear({}, {}), NumericalError);
  EXPECT_THROW(PiecewiseLinear({1.0}, {1.0, 2.0}), NumericalError);
}

TEST(PiecewiseLinear, InverseLookupRejectsDecreasingY) {
  PiecewiseLinear f({0.0, 1.0}, {2.0, 1.0});
  EXPECT_THROW(f.InverseLookup(1.5), NumericalError);
}

TEST(BisectRoot, FindsSqrtTwo) {
  const double root =
      BisectRoot(0.0, 2.0, 1e-12, [](double x) { return x * x - 2.0; });
  EXPECT_NEAR(root, std::sqrt(2.0), 1e-10);
}

TEST(BisectRoot, ThrowsWhenNotBracketed) {
  EXPECT_THROW(
      BisectRoot(0.0, 1.0, 1e-12, [](double x) { return x * x + 1.0; }),
      NumericalError);
}

// ---------------------------------------------------------------------------
// TextTable
// ---------------------------------------------------------------------------

TEST(TextTable, PrintsAlignedColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "22"});
  std::ostringstream os;
  t.Print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), ConfigError);
}

TEST(TextTable, CsvEscapesSpecialCells) {
  TextTable t({"x"});
  t.AddRow({"va,l\"ue"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_NE(os.str().find("\"va,l\"\"ue\""), std::string::npos);
}

TEST(FmtHelpers, FormatValues) {
  EXPECT_EQ(Fmt(0.9671, 2), "0.97");
  EXPECT_EQ(Fmt(3.0, 0), "3");
  EXPECT_EQ(FmtPercent(0.341, 1), "34.1%");
}

// ---------------------------------------------------------------------------
// Units
// ---------------------------------------------------------------------------

TEST(Units, SecondsToCyclesRoundsUp) {
  EXPECT_EQ(SecondsToCyclesCeil(1.25e-9, 1.25e-9), 1u);
  EXPECT_EQ(SecondsToCyclesCeil(1.26e-9, 1.25e-9), 2u);
  EXPECT_EQ(SecondsToCyclesCeil(0.0, 1.25e-9), 0u);
  EXPECT_EQ(SecondsToCyclesCeil(-1.0, 1.25e-9), 0u);
}

TEST(Units, RoundTripCycles) {
  const double period = 1.25e-9;
  EXPECT_DOUBLE_EQ(CyclesToSeconds(8, period), 1e-8);
}

// ---------------------------------------------------------------------------
// TechnologyParams
// ---------------------------------------------------------------------------

TEST(TechnologyParams, DefaultValidates) {
  TechnologyParams tech;
  EXPECT_NO_THROW(tech.Validate());
}

TEST(TechnologyParams, DerivedQuantities) {
  TechnologyParams tech;
  tech.rows = 1000;
  tech.cbl_per_row = 0.05e-15;
  tech.cbl_fixed = 5e-15;
  EXPECT_NEAR(tech.Cbl(), 55e-15, 1e-20);
  EXPECT_DOUBLE_EQ(tech.Veq(), 0.6);
  EXPECT_GT(tech.Cbb(), 0.0);
  EXPECT_GT(tech.Cbw(), 0.0);
}

TEST(TechnologyParams, RejectsNonPhysical) {
  TechnologyParams tech;
  tech.vdd = -1.0;
  EXPECT_THROW(tech.Validate(), ConfigError);

  tech = TechnologyParams{};
  tech.rows = 0;
  EXPECT_THROW(tech.Validate(), ConfigError);

  tech = TechnologyParams{};
  tech.cs = 0.0;
  EXPECT_THROW(tech.Validate(), ConfigError);
}

TEST(TechnologyParams, WithGeometryChangesOnlyGeometry) {
  TechnologyParams tech;
  const auto big = tech.WithGeometry(16384, 128);
  EXPECT_EQ(big.rows, 16384u);
  EXPECT_EQ(big.columns, 128u);
  EXPECT_DOUBLE_EQ(big.vdd, tech.vdd);
  EXPECT_GT(big.Cbl(), tech.Cbl());
  EXPECT_EQ(big.GeometryLabel(), "16384x128");
}

}  // namespace
}  // namespace vrl
