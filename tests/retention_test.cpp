#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "model/refresh_model.hpp"
#include "retention/distribution.hpp"
#include "retention/leakage.hpp"
#include "retention/mprsf.hpp"
#include "retention/profile.hpp"
#include "retention/vrt.hpp"

namespace vrl::retention {
namespace {

// ---------------------------------------------------------------------------
// RetentionDistribution (Fig. 3a)
// ---------------------------------------------------------------------------

TEST(Distribution, SamplesRespectFloor) {
  RetentionDistribution dist;
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_GE(dist.SampleCellRetention(rng),
              dist.params().min_retention_s);
  }
}

TEST(Distribution, CdfIsMonotoneAndBounded) {
  RetentionDistribution dist;
  double prev = 0.0;
  for (double t = 0.05; t < 10.0; t *= 1.3) {
    const double c = dist.CellCdf(t);
    EXPECT_GE(c, prev);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(dist.CellCdf(0.01), 0.0);
}

TEST(Distribution, EmpiricalCdfMatchesAnalytic) {
  RetentionDistribution dist;
  Rng rng(7);
  const int n = 200000;
  int below_1s = 0;
  int below_256ms = 0;
  for (int i = 0; i < n; ++i) {
    const double t = dist.SampleCellRetention(rng);
    below_1s += t < 1.0 ? 1 : 0;
    below_256ms += t < 0.256 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(below_1s) / n, dist.CellCdf(1.0), 0.01);
  EXPECT_NEAR(static_cast<double>(below_256ms) / n, dist.CellCdf(0.256),
              5e-4);
}

TEST(Distribution, WeakTailFractionCalibrated) {
  // ~0.122% of cells below 256 ms, matching the Fig. 3b row binning.
  RetentionDistribution dist;
  EXPECT_NEAR(dist.CellCdf(0.256), dist.params().weak_fraction, 1e-5);
}

TEST(Distribution, RowRetentionIsMinOfCells) {
  RetentionDistribution dist;
  Rng rng_a(42);
  Rng rng_b(42);
  // With the same stream, the row draw equals the running min of the same
  // 32 cell draws.
  const double row = dist.SampleRowRetention(rng_a, 32);
  double expected = 1e99;
  for (int i = 0; i < 32; ++i) {
    expected = std::min(expected, dist.SampleCellRetention(rng_b));
  }
  EXPECT_DOUBLE_EQ(row, expected);
}

TEST(Distribution, RowMinShiftsDistributionDown) {
  RetentionDistribution dist;
  Rng rng(3);
  double sum_cell = 0.0;
  double sum_row = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    sum_cell += dist.SampleCellRetention(rng);
    sum_row += dist.SampleRowRetention(rng, 32);
  }
  EXPECT_LT(sum_row, sum_cell);
}

TEST(Distribution, HistogramCoversWindow) {
  RetentionDistribution dist;
  Rng rng(5);
  const auto hist =
      BuildRetentionHistogram(dist, rng, 50000, 0.065, 4.681, 21, true);
  ASSERT_EQ(hist.size(), 21u);
  const auto total = std::accumulate(hist.begin(), hist.end(), std::size_t{0});
  EXPECT_EQ(total, 50000u);  // clamped overflow keeps every sample
  // Fig. 3a shape: an interior peak (not the first bucket).
  const auto peak = std::max_element(hist.begin(), hist.end());
  EXPECT_GT(peak - hist.begin(), 1);
}

TEST(Distribution, RejectsBadParams) {
  RetentionDistributionParams p;
  p.weak_fraction = 1.5;
  EXPECT_THROW(RetentionDistribution{p}, ConfigError);
  p = RetentionDistributionParams{};
  p.lognormal_sigma = 0.0;
  EXPECT_THROW(RetentionDistribution{p}, ConfigError);
}

// ---------------------------------------------------------------------------
// RetentionProfile + binning (Fig. 3b)
// ---------------------------------------------------------------------------

TEST(Profile, GenerateProducesRequestedRows) {
  RetentionDistribution dist;
  Rng rng(11);
  const auto profile = RetentionProfile::Generate(dist, 512, 32, rng);
  EXPECT_EQ(profile.rows(), 512u);
  EXPECT_GT(profile.MinRetention(), 0.0);
}

TEST(Profile, RejectsEmptyAndNonPositive) {
  EXPECT_THROW(RetentionProfile(std::vector<double>{}), ConfigError);
  EXPECT_THROW(RetentionProfile({1.0, -2.0}), ConfigError);
}

TEST(Profile, RowRetentionBoundsChecked) {
  const RetentionProfile profile({1.0, 2.0});
  EXPECT_DOUBLE_EQ(profile.RowRetention(1), 2.0);
  EXPECT_THROW(profile.RowRetention(2), ConfigError);
}

TEST(Binning, AssignsLargestSafePeriod) {
  const RetentionProfile profile({0.07, 0.13, 0.2, 0.3, 5.0});
  const auto bins = BinRows(profile, StandardBinPeriods());
  EXPECT_EQ(bins.row_bin[0], 0);  // 70ms -> 64ms bin
  EXPECT_EQ(bins.row_bin[1], 1);  // 130ms -> 128ms bin
  EXPECT_EQ(bins.row_bin[2], 2);  // 200ms -> 192ms bin
  EXPECT_EQ(bins.row_bin[3], 3);  // 300ms -> 256ms bin
  EXPECT_EQ(bins.row_bin[4], 3);  // 5s -> 256ms bin (largest available)
  EXPECT_DOUBLE_EQ(bins.RowPeriod(4), 0.256);
}

TEST(Binning, CountsSumToRows) {
  RetentionDistribution dist;
  Rng rng(1234);
  const auto profile = RetentionProfile::Generate(dist, 8192, 32, rng);
  const auto bins = BinRows(profile, StandardBinPeriods());
  const auto total = std::accumulate(bins.rows_per_bin.begin(),
                                     bins.rows_per_bin.end(), std::size_t{0});
  EXPECT_EQ(total, 8192u);
}

TEST(Binning, ReproducesFig3bShape) {
  // Monte-Carlo reproduction of the paper's Fig. 3b table
  // (68 / 101 / 145 / 7878 rows).  Allow generous tolerance: the bin
  // populations are binomial draws.
  RetentionDistribution dist;
  Rng rng(1234);
  const auto profile = RetentionProfile::Generate(dist, 8192, 32, rng);
  const auto bins = BinRows(profile, StandardBinPeriods());
  ASSERT_EQ(bins.rows_per_bin.size(), 4u);
  EXPECT_NEAR(static_cast<double>(bins.rows_per_bin[0]), 68.0, 35.0);
  EXPECT_NEAR(static_cast<double>(bins.rows_per_bin[1]), 101.0, 45.0);
  EXPECT_NEAR(static_cast<double>(bins.rows_per_bin[2]), 145.0, 55.0);
  EXPECT_GT(bins.rows_per_bin[3], 7700u);
  // And the ordering of the weak bins is preserved.
  EXPECT_LT(bins.rows_per_bin[0], bins.rows_per_bin[1]);
  EXPECT_LT(bins.rows_per_bin[1], bins.rows_per_bin[2]);
}

TEST(Binning, ThrowsOnUnrefreshableRow) {
  const RetentionProfile profile({0.01});
  EXPECT_THROW(BinRows(profile, StandardBinPeriods()), ConfigError);
}

TEST(Binning, RejectsUnsortedPeriods) {
  const RetentionProfile profile({1.0});
  EXPECT_THROW(BinRows(profile, {0.128, 0.064}), ConfigError);
}

// ---------------------------------------------------------------------------
// LeakageModel
// ---------------------------------------------------------------------------

TEST(Leakage, DecayReachesReadableAtRetentionTime) {
  // By definition: starting from full, after exactly the retention time the
  // cell is at the readable limit.
  const LeakageModel leak(0.9995, 0.579);
  const double t_ret = 0.5;
  EXPECT_NEAR(leak.FractionAfter(0.9995, t_ret, t_ret), 0.579, 1e-9);
}

TEST(Leakage, DecayIsExponential) {
  const LeakageModel leak(1.0, 0.5);
  const double tau = leak.TauCell(1.0);
  EXPECT_NEAR(leak.FractionAfter(1.0, tau, 1.0), std::exp(-1.0), 1e-12);
}

TEST(Leakage, LongerRetentionDecaysSlower) {
  const LeakageModel leak(0.9995, 0.579);
  EXPECT_GT(leak.FractionAfter(1.0, 0.064, 0.256),
            leak.FractionAfter(1.0, 0.064, 0.128));
}

TEST(Leakage, TimeToReachInvertsDecay) {
  const LeakageModel leak(0.9995, 0.579);
  const double t = leak.TimeToReach(0.9, 0.7, 1.0);
  EXPECT_NEAR(leak.FractionAfter(0.9, t, 1.0), 0.7, 1e-12);
}

TEST(Leakage, TimeToReachEdgeCases) {
  const LeakageModel leak(0.9995, 0.579);
  EXPECT_DOUBLE_EQ(leak.TimeToReach(0.7, 0.8, 1.0), 0.0);
  EXPECT_TRUE(std::isinf(leak.TimeToReach(0.7, 0.0, 1.0)));
}

TEST(Leakage, RejectsBadFractions) {
  EXPECT_THROW(LeakageModel(0.5, 0.6), ConfigError);
  EXPECT_THROW(LeakageModel(1.2, 0.5), ConfigError);
  EXPECT_THROW(LeakageModel(0.9, 0.0), ConfigError);
}

// ---------------------------------------------------------------------------
// MprsfCalculator (§3, Fig. 1b)
// ---------------------------------------------------------------------------

class MprsfTest : public ::testing::Test {
 protected:
  MprsfTest()
      : model_(TechnologyParams{}),
        calc_(model_, model_.PartialRefreshTimings().tau_post_s) {}

  model::RefreshModel model_;
  MprsfCalculator calc_;
};

TEST_F(MprsfTest, BarelyRetainingCellHasZeroMprsf) {
  // Retention just above the refresh period: the first partial leaves too
  // little charge for the next refresh.
  EXPECT_EQ(calc_.ComputeMprsf(0.067, 0.064, 8), 0u);
}

TEST_F(MprsfTest, ModerateCellSustainsOnePartial) {
  EXPECT_EQ(calc_.ComputeMprsf(0.100, 0.064, 8), 1u);
}

TEST_F(MprsfTest, StrongCellIsLimitedByRestoreTruncation) {
  // Even a very strong cell cannot sustain unlimited partials: the
  // compounded restore deficit kills the third consecutive partial.
  EXPECT_LE(calc_.ComputeMprsf(4.0, 0.256, 8), 3u);
  EXPECT_GE(calc_.ComputeMprsf(4.0, 0.256, 8), 2u);
}

TEST_F(MprsfTest, MprsfIsMonotoneInRetention) {
  std::size_t prev = 0;
  for (const double t : {0.067, 0.08, 0.1, 0.2, 0.5, 1.0, 3.0}) {
    const std::size_t m = calc_.ComputeMprsf(t, 0.064, 8);
    EXPECT_GE(m, prev);
    prev = m;
  }
}

TEST_F(MprsfTest, MaxPartialsCapsResult) {
  const std::size_t uncapped = calc_.ComputeMprsf(4.0, 0.256, 8);
  EXPECT_EQ(calc_.ComputeMprsf(4.0, 0.256, 1), std::min<std::size_t>(uncapped, 1));
}

TEST_F(MprsfTest, ThrowsWhenRefreshSlowerThanRetention) {
  EXPECT_THROW(calc_.ComputeMprsf(0.05, 0.064, 8), ConfigError);
}

TEST_F(MprsfTest, Fig1bTrajectoryFailsOnSecondPartial) {
  // The paper's Fig. 1b cell: retention slightly above 64 ms.  Full
  // refresh, one good partial at 95%, then the second partial finds the
  // cell below the sensing threshold.
  const auto traj = calc_.SimulateSchedule(0.067, 0.064, 3, 4);
  std::vector<MprsfCalculator::TrajectoryPoint> refreshes;
  for (const auto& p : traj) {
    if (p.is_refresh) {
      refreshes.push_back(p);
    }
  }
  ASSERT_GE(refreshes.size(), 3u);
  EXPECT_TRUE(refreshes[0].was_full);
  EXPECT_TRUE(refreshes[1].sense_ok);
  EXPECT_FALSE(refreshes[1].was_full);
  EXPECT_NEAR(refreshes[1].fraction, 0.95, 0.01);
  EXPECT_FALSE(refreshes[2].sense_ok);  // data lost
}

TEST_F(MprsfTest, FullRefreshOnlyScheduleIsStable) {
  const auto traj = calc_.SimulateSchedule(0.1, 0.064, 0, 10);
  for (const auto& p : traj) {
    EXPECT_TRUE(p.sense_ok);
    if (p.is_refresh) {
      EXPECT_TRUE(p.was_full);
      // Cycle-quantized τpost restores slightly beyond the target.
      EXPECT_NEAR(p.fraction, model_.spec().full_target, 1e-3);
      EXPECT_GE(p.fraction, model_.spec().full_target - 1e-9);
    }
  }
}

TEST_F(MprsfTest, TrajectoryTimesAreMonotone) {
  const auto traj = calc_.SimulateSchedule(0.5, 0.064, 2, 6);
  for (std::size_t i = 1; i < traj.size(); ++i) {
    EXPECT_GE(traj[i].time_s, traj[i - 1].time_s);
  }
}

TEST_F(MprsfTest, RowMprsfMatchesPerRowComputation) {
  const RetentionProfile profile({0.067, 0.1, 2.0});
  const auto bins = BinRows(profile, StandardBinPeriods());
  const auto row_mprsf = calc_.ComputeRowMprsf(profile, bins, 3);
  ASSERT_EQ(row_mprsf.size(), 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(row_mprsf[r],
              calc_.ComputeMprsf(profile.RowRetention(r), bins.RowPeriod(r), 3));
  }
}

TEST_F(MprsfTest, RejectsNonPositiveTauPartial) {
  EXPECT_THROW(MprsfCalculator(model_, 0.0), ConfigError);
}

// ---------------------------------------------------------------------------
// VRT (the worst-case path guarding the fault campaign)
// ---------------------------------------------------------------------------

TEST(Vrt, SampleVrtRowsIsDeterministicGivenRngState) {
  VrtParams params;
  params.row_fraction = 0.1;
  Rng a(99);
  Rng b(99);
  EXPECT_EQ(SampleVrtRows(params, 4096, a), SampleVrtRows(params, 4096, b));
  Rng c(100);
  EXPECT_NE(SampleVrtRows(params, 4096, a), SampleVrtRows(params, 4096, c));
}

TEST(Vrt, WorstCaseScalesExactlyTheVrtRows) {
  VrtParams params;
  params.low_ratio = 0.6;
  const RetentionProfile profiled({0.5, 1.0, 2.0, 4.0});
  const std::vector<bool> vrt_rows = {false, true, false, true};
  const auto worst = WorstCaseRuntimeProfile(profiled, vrt_rows, params);
  ASSERT_EQ(worst.rows(), 4u);
  EXPECT_DOUBLE_EQ(worst.RowRetention(0), 0.5);
  EXPECT_DOUBLE_EQ(worst.RowRetention(1), 1.0 * 0.6);
  EXPECT_DOUBLE_EQ(worst.RowRetention(2), 2.0);
  EXPECT_DOUBLE_EQ(worst.RowRetention(3), 4.0 * 0.6);
}

TEST(Vrt, ParamsValidateDwellTime) {
  VrtParams params;
  EXPECT_NO_THROW(params.Validate());
  params.mean_dwell_s = 0.0;
  EXPECT_THROW(params.Validate(), ConfigError);
  params.mean_dwell_s = -1.0;
  EXPECT_THROW(params.Validate(), ConfigError);
}

}  // namespace
}  // namespace vrl::retention
