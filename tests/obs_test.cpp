// Tests for the observability plane (src/obs/, docs/OBSERVABILITY.md):
// Prometheus exposition rendering, histogram quantiles, the SLO watchdog
// rules engine and its hysteresis state machine, the embedded monitor
// server (deterministic publish/scrape interleaves through HandleGet plus
// a real loopback HTTP scrape during a running fault campaign), the
// ProgressReporter behind /runs, and the WriteTraceFile extension
// dispatch.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/vrl_system.hpp"
#include "fault/injector.hpp"
#include "obs/monitor_server.hpp"
#include "obs/plane.hpp"
#include "obs/progress.hpp"
#include "obs/prometheus.hpp"
#include "obs/watchdog.hpp"
#include "retention/vrt.hpp"
#include "runtime/runner.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/trace_export.hpp"

namespace vrl::obs {
namespace {

using telemetry::EventKind;
using telemetry::MetricKind;
using telemetry::MetricsSnapshot;
using telemetry::MetricValue;

// -- Helpers ------------------------------------------------------------------

std::string TempPath(const std::string& name) {
  return testing::TempDir() + name;
}

/// Body of an HTTP response (everything past the blank line).
std::string BodyOf(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string() : response.substr(split + 4);
}

/// Status code of an HTTP response ("HTTP/1.1 200 OK" -> 200).
int StatusOf(const std::string& response) {
  return std::stoi(response.substr(response.find(' ') + 1));
}

/// A real GET over loopback — the same path curl takes in CI.
std::string HttpGet(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect to 127.0.0.1:" << port << " failed";
    return {};
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t wrote =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (wrote <= 0) {
      break;
    }
    sent += static_cast<std::size_t>(wrote);
  }
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) {
      break;
    }
    response.append(chunk, static_cast<std::size_t>(got));
  }
  ::close(fd);
  return response;
}

/// Snapshot with the three watchdog-watched counters set to lifetime totals.
MetricsSnapshot CounterSnapshot(std::uint64_t detected, std::uint64_t fulls,
                                std::uint64_t partials) {
  MetricsSnapshot snapshot;
  MetricValue counter;
  counter.kind = MetricKind::kCounter;
  counter.count = detected;
  snapshot.metrics["campaign.detected_failures"] = counter;
  counter.count = fulls;
  snapshot.metrics["policy.full_refreshes"] = counter;
  counter.count = partials;
  snapshot.metrics["policy.partial_refreshes"] = counter;
  return snapshot;
}

// -- Histogram quantiles (satellite) ------------------------------------------

TEST(HistogramQuantile, InterpolatesWithinTheRankBucket) {
  const std::vector<double> edges{10.0, 20.0};
  const std::vector<std::uint64_t> counts{4, 4, 0};  // total 8
  // rank 2 of 8 sits halfway through bucket 0, which spans (0, 10].
  EXPECT_DOUBLE_EQ(telemetry::HistogramQuantile(edges, counts, 0.25), 5.0);
  // rank 4 closes bucket 0 exactly.
  EXPECT_DOUBLE_EQ(telemetry::HistogramQuantile(edges, counts, 0.5), 10.0);
  // rank 6 sits halfway through bucket 1, spanning (10, 20].
  EXPECT_DOUBLE_EQ(telemetry::HistogramQuantile(edges, counts, 0.75), 15.0);
  EXPECT_DOUBLE_EQ(telemetry::HistogramQuantile(edges, counts, 1.0), 20.0);
  EXPECT_DOUBLE_EQ(telemetry::HistogramQuantile(edges, counts, 0.0), 0.0);
}

TEST(HistogramQuantile, OverflowBucketReturnsTheLastEdge) {
  const std::vector<double> edges{10.0, 20.0};
  const std::vector<std::uint64_t> counts{0, 0, 5};
  EXPECT_DOUBLE_EQ(telemetry::HistogramQuantile(edges, counts, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(telemetry::HistogramQuantile(edges, counts, 1.0), 20.0);
}

TEST(HistogramQuantile, NonPositiveFirstEdgeDoesNotInterpolateFromZero) {
  // With edges starting at or below zero there is no natural lower bound;
  // the first bucket reports its closing edge.
  const std::vector<double> edges{-5.0, 5.0};
  const std::vector<std::uint64_t> counts{2, 0, 0};
  EXPECT_DOUBLE_EQ(telemetry::HistogramQuantile(edges, counts, 0.5), -5.0);
}

TEST(HistogramQuantile, EmptyHistogramIsNaN) {
  EXPECT_TRUE(std::isnan(telemetry::HistogramQuantile({10.0}, {0, 0}, 0.5)));
}

TEST(HistogramQuantile, RejectsBadArguments) {
  EXPECT_THROW(telemetry::HistogramQuantile({10.0}, {1, 1}, 1.5), ConfigError);
  EXPECT_THROW(telemetry::HistogramQuantile({10.0}, {1, 1}, -0.1), ConfigError);
  EXPECT_THROW(telemetry::HistogramQuantile({10.0}, {1}, 0.5), ConfigError);
  EXPECT_THROW(telemetry::HistogramQuantile({}, {1}, 0.5), ConfigError);
}

TEST(HistogramQuantile, LiveHistogramCellDelegates) {
  telemetry::Histogram histogram({10.0, 20.0});
  histogram.Observe(5.0);
  histogram.Observe(15.0);
  histogram.Observe(15.0);
  histogram.Observe(25.0);  // overflow
  // rank 2 of 4 closes bucket 0's half... bucket 0 holds 1 of 4, so rank 2
  // lands in bucket 1 (10, 20] at fraction (2-1)/2.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 20.0);
  EXPECT_THROW(histogram.Quantile(2.0), ConfigError);
}

// -- WriteTraceFile extension dispatch (satellite) ----------------------------

class TraceFileDispatch : public testing::Test {
 protected:
  TraceFileDispatch() {
    telemetry::RecorderOptions options;
    options.enable_tracing = true;
    recorder_ = std::make_unique<telemetry::Recorder>(options);
    recorder_->tracer()->CompleteSpan("work", 0, 100);
  }
  std::unique_ptr<telemetry::Recorder> recorder_;
};

TEST_F(TraceFileDispatch, UppercaseJsonlSelectsJsonl) {
  const std::string path = TempPath("obs_dispatch.JSONL");
  telemetry::WriteTraceFile(path, *recorder_->tracer());
  std::ifstream is(path);
  std::string first_line;
  std::getline(is, first_line);
  EXPECT_NE(first_line.find("\"type\""), std::string::npos) << first_line;
  std::remove(path.c_str());
}

TEST_F(TraceFileDispatch, MixedCaseJsonSelectsChromeTrace) {
  const std::string path = TempPath("obs_dispatch.Json");
  telemetry::WriteTraceFile(path, *recorder_->tracer());
  std::ifstream is(path);
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("traceEvents"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TraceFileDispatch, UnknownExtensionIsRejectedWithoutCreatingTheFile) {
  const std::string path = TempPath("obs_dispatch.txt");
  try {
    telemetry::WriteTraceFile(path, *recorder_->tracer());
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find("unsupported extension"),
              std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find(".txt"), std::string::npos);
  }
  // Dispatch happens before the file opens: no empty husk left behind.
  EXPECT_FALSE(std::ifstream(path).good());
}

TEST_F(TraceFileDispatch, PathWithoutAnyExtensionIsRejected) {
  EXPECT_THROW(
      telemetry::WriteTraceFile(TempPath("no_extension"), *recorder_->tracer()),
      ConfigError);
}

// -- Prometheus rendering -----------------------------------------------------

TEST(Prometheus, SanitizeMetricName) {
  EXPECT_EQ(SanitizeMetricName("policy.full_refreshes"),
            "policy_full_refreshes");
  EXPECT_EQ(SanitizeMetricName("a-b c:d9"), "a_b_c:d9");
}

TEST(Prometheus, DoubleFormatting) {
  EXPECT_EQ(PrometheusDouble(1.5), "1.5");
  EXPECT_EQ(PrometheusDouble(std::nan("")), "NaN");
  EXPECT_EQ(PrometheusDouble(HUGE_VAL), "+Inf");
  EXPECT_EQ(PrometheusDouble(-HUGE_VAL), "-Inf");
}

TEST(Prometheus, RendersEveryKindInExpositionGrammar) {
  telemetry::Recorder recorder;
  recorder.counter("ops").Add(7);
  recorder.gauge("margin").Set(-0.5);
  telemetry::Histogram& histogram =
      recorder.histogram("lat.hist", {10.0, 20.0});
  histogram.Observe(5.0);
  histogram.Observe(15.0);
  histogram.Observe(25.0);

  std::ostringstream os;
  RenderPrometheus(os, recorder.Snapshot());
  EXPECT_EQ(os.str(),
            "# TYPE vrl_lat_hist histogram\n"
            "vrl_lat_hist_bucket{le=\"10\"} 1\n"
            "vrl_lat_hist_bucket{le=\"20\"} 2\n"
            "vrl_lat_hist_bucket{le=\"+Inf\"} 3\n"
            "vrl_lat_hist_sum 45\n"
            "vrl_lat_hist_count 3\n"
            "# TYPE vrl_lat_hist_p50 gauge\n"
            "vrl_lat_hist_p50 15\n"
            "# TYPE vrl_lat_hist_p99 gauge\n"
            "vrl_lat_hist_p99 20\n"
            "# TYPE vrl_margin gauge\n"
            "vrl_margin -0.5\n"
            "# TYPE vrl_ops_total counter\n"
            "vrl_ops_total 7\n");
}

TEST(Prometheus, QuantileGaugesSkippedForEmptyHistograms) {
  telemetry::Recorder recorder;
  recorder.histogram("empty", {1.0});
  std::ostringstream os;
  RenderPrometheus(os, recorder.Snapshot());
  EXPECT_EQ(os.str().find("_p50"), std::string::npos);
  EXPECT_NE(os.str().find("vrl_empty_count 0"), std::string::npos);
}

TEST(Prometheus, TimersRenderAsCountersAndCanBeExcluded) {
  telemetry::Recorder recorder;
  recorder.metrics().GetTimer("time.phase.solve").Record(0.25);
  PrometheusOptions options;
  std::ostringstream with;
  RenderPrometheus(with, recorder.Snapshot(), options);
  EXPECT_NE(with.str().find("vrl_time_phase_solve_seconds_total 0.25"),
            std::string::npos);
  EXPECT_NE(with.str().find("vrl_time_phase_solve_calls_total 1"),
            std::string::npos);
  options.include_timers = false;
  std::ostringstream without;
  RenderPrometheus(without, recorder.Snapshot(), options);
  EXPECT_EQ(without.str(), "");
}

// -- Watchdog rules parsing ---------------------------------------------------

TEST(WatchdogRulesParse, EmptyObjectKeepsEveryRuleDisabled) {
  const WatchdogRules rules = ParseWatchdogRules("{}");
  EXPECT_LT(rules.max_sensing_failure_rate, 0.0);
  EXPECT_LT(rules.max_refresh_overhead, 0.0);
  EXPECT_LT(rules.min_partial_full_ratio, 0.0);
  EXPECT_LT(rules.max_staleness_s, 0.0);
}

TEST(WatchdogRulesParse, ParsesEveryField) {
  const WatchdogRules rules = ParseWatchdogRules(R"({
    "max_sensing_failure_rate": 0.01,
    "max_refresh_overhead": 0.12,
    "min_partial_full_ratio": 1.5,
    "max_staleness_s": 5,
    "breach_samples": 3,
    "fail_samples": 6,
    "clear_samples": 4
  })");
  EXPECT_DOUBLE_EQ(rules.max_sensing_failure_rate, 0.01);
  EXPECT_DOUBLE_EQ(rules.max_refresh_overhead, 0.12);
  EXPECT_DOUBLE_EQ(rules.min_partial_full_ratio, 1.5);
  EXPECT_DOUBLE_EQ(rules.max_staleness_s, 5.0);
  EXPECT_EQ(rules.breach_samples, 3u);
  EXPECT_EQ(rules.fail_samples, 6u);
  EXPECT_EQ(rules.clear_samples, 4u);
}

TEST(WatchdogRulesParse, UnknownKeyIsAnError) {
  // A typo'd threshold must not silently disable the rule.
  EXPECT_THROW(ParseWatchdogRules(R"({"max_sensing_failure_rte": 0.1})"),
               ConfigError);
}

TEST(WatchdogRulesParse, UnknownKeyErrorListsTheValidFields) {
  try {
    ParseWatchdogRules(R"({"max_sensing_failure_rte": 0.1})");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("unknown rule 'max_sensing_failure_rte'"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("expected one of:"), std::string::npos) << what;
    // The listing is the full field table, including the fleet rule.
    EXPECT_NE(what.find("max_sensing_failure_rate"), std::string::npos);
    EXPECT_NE(what.find("max_worker_stale_s"), std::string::npos);
    EXPECT_NE(what.find("clear_samples"), std::string::npos);
  }
}

TEST(WatchdogRulesParse, KeysAreCaseAndSeparatorInsensitive) {
  // Mirrors dram::PolicyRegistry's spelling tolerance: case and -/_
  // separators never matter.
  const WatchdogRules rules = ParseWatchdogRules(R"({
    "Max-Worker-Stale-S": 1.5,
    "MAXSTALENESSS": 7,
    "breachSamples": 2,
    "fail_samples": 2
  })");
  EXPECT_DOUBLE_EQ(rules.max_worker_stale_s, 1.5);
  EXPECT_DOUBLE_EQ(rules.max_staleness_s, 7.0);
  EXPECT_EQ(rules.breach_samples, 2u);
}

TEST(WatchdogRulesParse, ParsesTheWorkerStaleRule) {
  const WatchdogRules rules =
      ParseWatchdogRules(R"({"max_worker_stale_s": 2})");
  EXPECT_DOUBLE_EQ(rules.max_worker_stale_s, 2.0);
  EXPECT_LT(WatchdogRules{}.max_worker_stale_s, 0.0);  // Off by default.
}

TEST(WatchdogRulesParse, MalformedInputIsAnError) {
  EXPECT_THROW(ParseWatchdogRules(""), ConfigError);
  EXPECT_THROW(ParseWatchdogRules("[]"), ConfigError);
  EXPECT_THROW(ParseWatchdogRules(R"({"breach_samples": })"), ConfigError);
  EXPECT_THROW(ParseWatchdogRules(R"({"breach_samples": 2} trailing)"),
               ConfigError);
  EXPECT_THROW(ParseWatchdogRules(R"({"max_staleness_s": "soon"})"),
               ConfigError);
}

TEST(WatchdogRulesParse, ValidatesHysteresisCounts) {
  EXPECT_THROW(ParseWatchdogRules(R"({"breach_samples": 0})"), ConfigError);
  EXPECT_THROW(ParseWatchdogRules(R"({"clear_samples": 0})"), ConfigError);
  EXPECT_THROW(ParseWatchdogRules(R"({"breach_samples": 4, "fail_samples": 2})"),
               ConfigError);
}

TEST(WatchdogRulesParse, LoadFileRoundTripsAndMissingFileThrows) {
  const std::string path = TempPath("obs_rules.json");
  {
    std::ofstream os(path);
    os << R"({"max_refresh_overhead": 0.2})";
  }
  EXPECT_DOUBLE_EQ(LoadWatchdogRulesFile(path).max_refresh_overhead, 0.2);
  std::remove(path.c_str());
  EXPECT_THROW(LoadWatchdogRulesFile(path), ConfigError);
}

// -- Watchdog hysteresis (satellite) ------------------------------------------

TEST(SloWatchdog, HysteresisEscalatesAndRecoversOneLevelAtATime) {
  WatchdogRules rules;
  rules.max_sensing_failure_rate = 0.1;
  rules.breach_samples = 2;
  rules.fail_samples = 3;
  rules.clear_samples = 2;
  SloWatchdog watchdog(rules);
  telemetry::EventTrace alerts(16);

  // Sample 0 only establishes the baseline, whatever the totals say.
  EXPECT_EQ(watchdog.Sample(CounterSnapshot(100, 100, 0), 0.0, &alerts),
            HealthState::kOk);
  // Breach #1 (rate 5/10 = 0.5): hysteresis holds the state at ok.
  EXPECT_EQ(watchdog.Sample(CounterSnapshot(105, 110, 0), 1.0, &alerts),
            HealthState::kOk);
  // Breach #2 reaches breach_samples: degraded.
  EXPECT_EQ(watchdog.Sample(CounterSnapshot(110, 120, 0), 2.0, &alerts),
            HealthState::kDegraded);
  EXPECT_NE(watchdog.last_breach().find("sensing_failure_rate"),
            std::string::npos);
  // Breach #3 reaches fail_samples: failing.
  EXPECT_EQ(watchdog.Sample(CounterSnapshot(115, 130, 0), 3.0, &alerts),
            HealthState::kFailing);
  // Clean #1: recovery hysteresis holds failing.
  EXPECT_EQ(watchdog.Sample(CounterSnapshot(115, 140, 0), 4.0, &alerts),
            HealthState::kFailing);
  // Clean #2 reaches clear_samples: one step down, not straight to ok.
  EXPECT_EQ(watchdog.Sample(CounterSnapshot(115, 150, 0), 5.0, &alerts),
            HealthState::kDegraded);
  EXPECT_EQ(watchdog.Sample(CounterSnapshot(115, 160, 0), 6.0, &alerts),
            HealthState::kDegraded);
  EXPECT_EQ(watchdog.Sample(CounterSnapshot(115, 170, 0), 7.0, &alerts),
            HealthState::kOk);

  // Every transition (and only transitions) landed in the alert trace:
  // ok->degraded, degraded->failing, failing->degraded, degraded->ok.
  const auto events = alerts.Events();
  ASSERT_EQ(events.size(), 4u);
  for (const auto& event : events) {
    EXPECT_EQ(event.kind, EventKind::kWatchdogTransition);
  }
  EXPECT_EQ(events[0].a, static_cast<std::int64_t>(HealthState::kDegraded));
  EXPECT_DOUBLE_EQ(events[0].value, 0.5);  // the breaching rate
  EXPECT_EQ(events[1].a, static_cast<std::int64_t>(HealthState::kFailing));
  EXPECT_EQ(events[2].a, static_cast<std::int64_t>(HealthState::kDegraded));
  EXPECT_DOUBLE_EQ(events[2].value, 0.0);  // recovery: nothing breaching
  EXPECT_EQ(events[3].a, static_cast<std::int64_t>(HealthState::kOk));
}

TEST(SloWatchdog, BreachRunInterruptedByACleanSampleStartsOver) {
  WatchdogRules rules;
  rules.max_sensing_failure_rate = 0.1;
  rules.breach_samples = 2;
  rules.fail_samples = 4;
  rules.clear_samples = 1;
  SloWatchdog watchdog(rules);
  watchdog.Sample(CounterSnapshot(0, 10, 0), 0.0);
  EXPECT_EQ(watchdog.Sample(CounterSnapshot(5, 20, 0), 1.0), HealthState::kOk);
  // A clean sample resets the consecutive-breach count...
  EXPECT_EQ(watchdog.Sample(CounterSnapshot(5, 30, 0), 2.0), HealthState::kOk);
  // ...so one more breach is again below breach_samples.
  EXPECT_EQ(watchdog.Sample(CounterSnapshot(10, 40, 0), 3.0),
            HealthState::kOk);
  EXPECT_EQ(watchdog.Sample(CounterSnapshot(15, 50, 0), 4.0),
            HealthState::kDegraded);
}

TEST(SloWatchdog, StalenessRuleFiresOnAWedgedRun) {
  WatchdogRules rules;
  rules.max_staleness_s = 1.0;
  rules.breach_samples = 1;
  rules.fail_samples = 2;
  rules.clear_samples = 1;
  SloWatchdog watchdog(rules);
  const MetricsSnapshot quiet = CounterSnapshot(0, 10, 0);
  watchdog.Sample(quiet, 0.0);  // baseline: activity stamped at 0.
  // Within budget: ok.
  EXPECT_EQ(watchdog.Sample(quiet, 0.5), HealthState::kOk);
  // Nothing moved for 2s > 1s: degraded immediately (breach_samples 1).
  EXPECT_EQ(watchdog.Sample(quiet, 2.0), HealthState::kDegraded);
  EXPECT_NE(watchdog.last_breach().find("staleness_s"), std::string::npos);
  // Counters moving again resets the activity clock and recovers.
  EXPECT_EQ(watchdog.Sample(CounterSnapshot(0, 20, 0), 2.5), HealthState::kOk);
}

TEST(SloWatchdog, PartialFullRatioRuleSkipsIntervalsWithoutFullRefreshes) {
  WatchdogRules rules;
  rules.min_partial_full_ratio = 2.0;
  rules.breach_samples = 1;
  rules.fail_samples = 2;
  rules.clear_samples = 1;
  SloWatchdog watchdog(rules);
  watchdog.Sample(CounterSnapshot(0, 10, 100), 0.0);
  // Interval with no full refreshes: the ratio is undefined, not a breach.
  EXPECT_EQ(watchdog.Sample(CounterSnapshot(0, 10, 150), 1.0),
            HealthState::kOk);
  // 10 fulls vs 10 partials: ratio 1 < 2 breaches.
  EXPECT_EQ(watchdog.Sample(CounterSnapshot(0, 20, 160), 2.0),
            HealthState::kDegraded);
}

// -- ProgressReporter ---------------------------------------------------------

TEST(ProgressReporter, TracksFanoutLifecycleWithInjectedClock) {
  double now = 10.0;
  ProgressReporter reporter([&now] { return now; }, 2);
  const std::uint64_t token = reporter.OnFanoutBegin("sweep", 3);
  now = 11.0;
  reporter.OnItemComplete(token);
  reporter.OnItemComplete(token);

  auto runs = reporter.Runs();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].label, "sweep");
  EXPECT_EQ(runs[0].items, 3u);
  EXPECT_EQ(runs[0].completed, 2u);
  EXPECT_TRUE(runs[0].active);
  EXPECT_DOUBLE_EQ(runs[0].started_s, 10.0);

  reporter.OnItemComplete(token);
  now = 12.0;
  reporter.OnFanoutEnd(token);
  runs = reporter.Runs();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_FALSE(runs[0].active);
  EXPECT_EQ(runs[0].completed, 3u);
  EXPECT_DOUBLE_EQ(runs[0].finished_s, 12.0);
  EXPECT_EQ(reporter.fanouts_begun(), 1u);
  EXPECT_EQ(reporter.fanouts_finished(), 1u);

  EXPECT_EQ(reporter.RenderRunsJson(),
            "{\"runs\":[{\"id\":1,\"label\":\"sweep\",\"items\":3,"
            "\"completed\":3,\"active\":false,\"started_s\":10,"
            "\"finished_s\":12}]}\n");
}

TEST(ProgressReporter, FinishedHistoryIsBoundedNewestFirst) {
  ProgressReporter reporter([] { return 0.0; }, 2);
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t token =
        reporter.OnFanoutBegin("run" + std::to_string(i), 1);
    reporter.OnItemComplete(token);
    reporter.OnFanoutEnd(token);
  }
  const auto runs = reporter.Runs();
  ASSERT_EQ(runs.size(), 2u);  // max_finished = 2
  EXPECT_EQ(runs[0].label, "run3");
  EXPECT_EQ(runs[1].label, "run2");
  EXPECT_EQ(reporter.fanouts_begun(), 4u);
  EXPECT_EQ(reporter.fanouts_finished(), 4u);
}

TEST(ProgressReporter, ObservesLabeledParallelForFanouts) {
  ProgressReporter reporter;
  ParallelObserver* previous = SetParallelObserver(&reporter);
  std::atomic<int> touched{0};
  ParallelFor("obs_test_fanout", 8,
              [&](std::size_t) { touched.fetch_add(1); }, 2);
  SetParallelObserver(previous);

  EXPECT_EQ(touched.load(), 8);
  EXPECT_EQ(reporter.fanouts_begun(), 1u);
  EXPECT_EQ(reporter.fanouts_finished(), 1u);
  const auto runs = reporter.Runs();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].label, "obs_test_fanout");
  EXPECT_EQ(runs[0].items, 8u);
  EXPECT_EQ(runs[0].completed, 8u);
  EXPECT_FALSE(runs[0].active);
}

TEST(ProgressReporter, ObserverSeesSerialFallbackFanoutsToo) {
  ProgressReporter reporter;
  ParallelObserver* previous = SetParallelObserver(&reporter);
  ParallelFor("obs_test_serial", 3, [](std::size_t) {}, 1);  // serial path
  SetParallelObserver(previous);
  const auto runs = reporter.Runs();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].completed, 3u);
}

// -- MonitorServer: deterministic publish/scrape interleaves ------------------

TEST(MonitorServer, ReadyzFlipsOnFirstPublish) {
  MonitorServer server;
  EXPECT_EQ(StatusOf(server.HandleGet("/readyz")), 503);
  telemetry::Recorder recorder;
  server.Publish(recorder);
  EXPECT_EQ(StatusOf(server.HandleGet("/readyz")), 200);
  EXPECT_EQ(BodyOf(server.HandleGet("/readyz")), "ready\n");
}

TEST(MonitorServer, UnknownPathIs404AndHealthReflectsSetHealth) {
  MonitorServer server;
  EXPECT_EQ(StatusOf(server.HandleGet("/nope")), 404);
  EXPECT_EQ(BodyOf(server.HandleGet("/healthz")), "ok\n");
  server.SetHealth(HealthState::kDegraded, "sensing_failure_rate=0.5");
  const std::string degraded = server.HandleGet("/healthz");
  EXPECT_EQ(StatusOf(degraded), 200);  // degraded still serves traffic
  EXPECT_EQ(BodyOf(degraded), "degraded sensing_failure_rate=0.5\n");
  server.SetHealth(HealthState::kFailing, "staleness_s=9");
  const std::string failing = server.HandleGet("/healthz");
  EXPECT_EQ(StatusOf(failing), 503);
  EXPECT_EQ(BodyOf(failing), "failing staleness_s=9\n");
}

// The satellite interleave test: a wrapped event ring publishes exact drop
// accounting, and a scrape between publishes renders the *published* copy,
// never the live recorder.
TEST(MonitorServer, DropAccountingUnderWrappedRingAcrossInterleavedScrapes) {
  telemetry::RecorderOptions options;
  options.event_capacity = 4;
  telemetry::Recorder recorder(options);
  MonitorServer server;

  for (std::uint64_t i = 0; i < 7; ++i) {  // wraps: 7 recorded, 3 displaced
    recorder.Record({EventKind::kDemotion, i, i, 0, 0.0});
  }
  ASSERT_EQ(recorder.events().recorded(), 7u);
  ASSERT_EQ(recorder.events().dropped(), 3u);
  server.Publish(recorder);

  const std::string first = BodyOf(server.HandleGet("/metrics"));
  EXPECT_NE(first.find("vrl_monitor_events_recorded_total 7\n"),
            std::string::npos);
  EXPECT_NE(first.find("vrl_monitor_events_dropped_total 3\n"),
            std::string::npos);
  EXPECT_NE(first.find("vrl_monitor_events_retained 4\n"), std::string::npos);
  EXPECT_NE(first.find("vrl_monitor_metrics_scrapes_total 1\n"),
            std::string::npos);

  // The recorder moves on; an unpublished scrape must not see it.
  for (std::uint64_t i = 0; i < 5; ++i) {
    recorder.Record({EventKind::kDemotion, i, i, 0, 0.0});
  }
  const std::string second = BodyOf(server.HandleGet("/metrics"));
  EXPECT_NE(second.find("vrl_monitor_events_recorded_total 7\n"),
            std::string::npos);
  EXPECT_NE(second.find("vrl_monitor_metrics_scrapes_total 2\n"),
            std::string::npos);

  // After the next publish the counters jump to 12 recorded / 8 dropped —
  // recorded = retained + dropped stays exact across the wrap.
  server.Publish(recorder);
  const std::string third = BodyOf(server.HandleGet("/metrics"));
  EXPECT_NE(third.find("vrl_monitor_events_recorded_total 12\n"),
            std::string::npos);
  EXPECT_NE(third.find("vrl_monitor_events_dropped_total 8\n"),
            std::string::npos);
  EXPECT_NE(third.find("vrl_monitor_events_retained 4\n"), std::string::npos);
  EXPECT_EQ(server.metrics_scrapes(), 3u);
}

TEST(MonitorServer, MetricsBodyStartsWithThePublishedSnapshotExposition) {
  telemetry::Recorder recorder;
  recorder.counter("campaign.windows").Add(5);
  recorder.gauge("campaign.min_margin").Set(0.25);
  MonitorServer server;
  server.Publish(recorder);

  std::ostringstream expected;
  RenderPrometheus(expected, recorder.Snapshot());
  const std::string body = BodyOf(server.HandleGet("/metrics"));
  EXPECT_EQ(body.rfind(expected.str(), 0), 0u)
      << "scrape does not start with the snapshot exposition";
}

TEST(MonitorServer, TraceTailServesNewestLineageWithSummary) {
  telemetry::RecorderOptions options;
  options.enable_tracing = true;
  options.tracing.max_lineage = 4;  // ring wraps: newest win
  telemetry::Recorder recorder(options);
  telemetry::Tracer& tracer = *recorder.tracer();
  const std::uint32_t cause = tracer.Intern("obs_test");
  for (std::uint64_t i = 0; i < 6; ++i) {
    tracer.Lineage({EventKind::kSensingFailure, i, /*row=*/100 + i, cause,
                    /*detail=*/0, /*value=*/-0.25});
  }
  MonitorServer server;
  server.Publish(recorder);

  const std::string all = BodyOf(server.HandleGet("/trace"));
  // 4 retained lineage lines + 1 summary.
  EXPECT_EQ(static_cast<int>(std::count(all.begin(), all.end(), '\n')), 5);
  EXPECT_NE(all.find("\"row\":105"), std::string::npos);  // newest retained
  EXPECT_EQ(all.find("\"row\":101"), std::string::npos);  // displaced
  EXPECT_NE(all.find("{\"type\":\"lineage_summary\",\"recorded\":6,"
                     "\"retained\":4,\"dropped\":2}"),
            std::string::npos);

  const std::string tail = BodyOf(server.HandleGet("/trace?last=1"));
  EXPECT_EQ(static_cast<int>(std::count(tail.begin(), tail.end(), '\n')), 2);
  EXPECT_NE(tail.find("\"row\":105"), std::string::npos);
  // An oversized ?last= clamps to what is retained.
  EXPECT_EQ(BodyOf(server.HandleGet("/trace?last=999")), all);
}

TEST(MonitorServer, RunsEndpointRendersTheProgressReporter) {
  ProgressReporter reporter([] { return 0.0; }, 4);
  MonitorServer server({}, &reporter);
  EXPECT_EQ(BodyOf(server.HandleGet("/runs")), "{\"runs\":[]}\n");
  const std::uint64_t token = reporter.OnFanoutBegin("sweep", 2);
  reporter.OnItemComplete(token);
  const std::string body = BodyOf(server.HandleGet("/runs"));
  EXPECT_NE(body.find("\"label\":\"sweep\""), std::string::npos);
  EXPECT_NE(body.find("\"completed\":1"), std::string::npos);
  EXPECT_NE(body.find("\"active\":true"), std::string::npos);
}

// -- MonitorServer: the real socket path --------------------------------------

TEST(MonitorServer, ServesOverLoopbackAndRejectsNonGet) {
  telemetry::Recorder recorder;
  recorder.counter("ops").Add(3);
  MonitorServer server;  // port 0: ephemeral
  ASSERT_GT(server.port(), 0);
  EXPECT_EQ(server.bind_address(), "127.0.0.1");
  server.Publish(recorder);

  const std::string response = HttpGet(server.port(), "/metrics");
  EXPECT_EQ(StatusOf(response), 200);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(BodyOf(response).find("vrl_ops_total 3\n"), std::string::npos);
  // The body over the wire equals the in-process handler's body.
  EXPECT_EQ(StatusOf(HttpGet(server.port(), "/healthz")), 200);
}

// -- MonitorPlane + fault campaign: the acceptance-criterion path -------------

// A live scrape during a running fault campaign returns valid exposition
// whose counters can only grow toward the end-of-run snapshot, and the
// injected faults flip /healthz from ok to degraded.
TEST(MonitorPlaneCampaign, LiveScrapeMatchesEndOfRunSnapshotAndHealthFlips) {
  const std::string rules_path = TempPath("obs_plane_rules.json");
  {
    std::ofstream os(rules_path);
    // Any detected sensing failure in a window breaches; huge fail/clear
    // counts keep the verdict at degraded once flipped.
    os << R"({"max_sensing_failure_rate": 0.0, "breach_samples": 1,
              "fail_samples": 1000000, "clear_samples": 1000000})";
  }
  PlaneOptions plane_options;
  plane_options.serve = true;
  plane_options.watchdog_path = rules_path;
  MonitorPlane plane(plane_options);
  ASSERT_NE(plane.server(), nullptr);
  ASSERT_NE(plane.watchdog(), nullptr);

  // Before the campaign: not ready, health ok.
  EXPECT_EQ(StatusOf(HttpGet(plane.server()->port(), "/readyz")), 503);
  EXPECT_EQ(BodyOf(HttpGet(plane.server()->port(), "/healthz")), "ok\n");

  core::VrlConfig config;
  config.banks = 1;
  const core::VrlSystem system(config);
  telemetry::Recorder recorder;
  fault::FaultSchedule faults(0xFA11ULL);
  retention::VrtParams vrt;  // defaults produce detected failures
  faults.Add(std::make_unique<fault::VrtFlipInjector>(vrt));

  std::string mid_run_scrape;
  core::FaultCampaignOptions options;
  options.windows = 4;
  options.adaptive = true;
  options.telemetry = &recorder;
  options.on_window = [&](std::size_t windows_done, Cycles) {
    plane.Sample(recorder);
    if (windows_done == 2) {
      // The "curl during a running campaign" moment, over a real socket.
      mid_run_scrape = HttpGet(plane.server()->port(), "/metrics");
    }
  };
  const auto report = system.RunFaultCampaign(core::PolicyKind::kVrl, faults,
                                              options);
  ASSERT_GT(report.detected_failures, 0u);
  plane.Sample(recorder);  // final end-of-run publish

  // The mid-run scrape is valid exposition with live campaign counters.
  ASSERT_FALSE(mid_run_scrape.empty());
  EXPECT_EQ(StatusOf(mid_run_scrape), 200);
  const std::string mid_body = BodyOf(mid_run_scrape);
  EXPECT_NE(mid_body.find("# TYPE vrl_campaign_detected_failures_total "
                          "counter\n"),
            std::string::npos);
  EXPECT_NE(mid_body.find("# TYPE vrl_policy_refresh_busy_cycles_total "
                          "counter\n"),
            std::string::npos);
  EXPECT_NE(mid_body.find("vrl_monitor_ready 1\n"), std::string::npos);

  // The end-of-run scrape renders exactly the recorder's final snapshot.
  std::ostringstream expected;
  RenderPrometheus(expected, recorder.Snapshot());
  const std::string final_body =
      BodyOf(HttpGet(plane.server()->port(), "/metrics"));
  EXPECT_EQ(final_body.rfind(expected.str(), 0), 0u)
      << "final scrape does not start with the end-of-run snapshot";

  // Counters in the mid-run scrape never exceed the end-of-run totals.
  const auto counter_value = [](const std::string& body,
                                const std::string& name) {
    const std::size_t at = body.find("\n" + name + " ");
    if (at == std::string::npos) {
      return -1.0;
    }
    return std::stod(body.substr(at + name.size() + 2));
  };
  const std::string detected = "vrl_campaign_detected_failures_total";
  ASSERT_GE(counter_value(mid_body, detected), 0.0);
  EXPECT_LE(counter_value(mid_body, detected),
            counter_value(final_body, detected));

  // The injected faults flipped /healthz from ok to degraded, and the
  // transition landed in the recorder's own event ring.
  EXPECT_EQ(plane.watchdog()->state(), HealthState::kDegraded);
  const std::string health = HttpGet(plane.server()->port(), "/healthz");
  EXPECT_EQ(StatusOf(health), 200);
  EXPECT_EQ(BodyOf(health).rfind("degraded sensing_failure_rate=", 0), 0u)
      << BodyOf(health);
  bool transition_recorded = false;
  for (const auto& event : recorder.events().Events()) {
    if (event.kind == EventKind::kWatchdogTransition &&
        event.a == static_cast<std::int64_t>(HealthState::kDegraded)) {
      transition_recorded = true;
    }
  }
  EXPECT_TRUE(transition_recorded);
  std::remove(rules_path.c_str());
}

TEST(MonitorPlane, NoServeNoWatchdogStillSamplesQuietly) {
  MonitorPlane plane(PlaneOptions{});
  EXPECT_EQ(plane.server(), nullptr);
  EXPECT_EQ(plane.watchdog(), nullptr);
  telemetry::Recorder recorder;
  plane.Sample(recorder);  // must be a harmless no-op
  EXPECT_EQ(recorder.events().recorded(), 0u);
}

TEST(MonitorPlane, BadRulesFileThrowsConfigError) {
  PlaneOptions options;
  options.watchdog_path = TempPath("obs_missing_rules.json");
  EXPECT_THROW(MonitorPlane plane(options), ConfigError);
}

// -- Fleet observability (tentpole) -------------------------------------------

/// Snapshot with the fleet glue's stalest-worker gauge set.
MetricsSnapshot WorkerAgeSnapshot(double age_s) {
  MetricsSnapshot snapshot;
  MetricValue gauge;
  gauge.kind = MetricKind::kGauge;
  gauge.value = age_s;
  snapshot.metrics["fleet.max_heartbeat_age_s"] = gauge;
  return snapshot;
}

TEST(SloWatchdog, WorkerStaleRuleIsCurrentValueNotDelta) {
  WatchdogRules rules;
  rules.max_worker_stale_s = 2.0;
  rules.breach_samples = 1;
  rules.fail_samples = 2;
  rules.clear_samples = 1;
  SloWatchdog watchdog(rules);

  // A hung worker breaches on the very first sample — no baseline interval
  // needed, unlike the delta rules.
  EXPECT_EQ(watchdog.Sample(WorkerAgeSnapshot(5.0), 0.0),
            HealthState::kDegraded);
  EXPECT_NE(watchdog.last_breach().find("worker_stale_s"),
            std::string::npos);
  EXPECT_EQ(watchdog.Sample(WorkerAgeSnapshot(5.5), 1.0),
            HealthState::kFailing);
  // The worker comes back (or is reaped): health steps back down.
  EXPECT_EQ(watchdog.Sample(WorkerAgeSnapshot(0.1), 2.0),
            HealthState::kDegraded);
  EXPECT_EQ(watchdog.Sample(WorkerAgeSnapshot(0.1), 3.0), HealthState::kOk);
}

telemetry::FleetStatus DemoFleet() {
  telemetry::FleetStatus fleet;
  fleet.workers_configured = 2;
  fleet.legs_total = 5;
  fleet.legs_committed = 2;
  fleet.legs_running = 2;
  fleet.legs_pending = 1;
  fleet.retries = 1;
  fleet.crashes = 1;
  fleet.frames_received = 7;
  fleet.frames_dropped = 3;
  fleet.active = {{0, 2, 1, 0.1, 4}, {1, 3, 2, 5.0, 3}};
  return fleet;
}

TEST(MonitorServer, FleetEndpointRendersLivenessAndDropAccounting) {
  MonitorServerOptions options;
  options.clock = [] { return 0.0; };  // Freeze scrape-time age correction.
  MonitorServer server(options);

  // Before any publish the endpoint reports an inactive fleet.
  EXPECT_EQ(BodyOf(server.HandleGet("/fleet")), "{\"active\":false}\n");

  server.PublishFleet(DemoFleet());
  const std::string body = BodyOf(server.HandleGet("/fleet"));
  EXPECT_NE(body.find("\"active\":true,\"workers_configured\":2"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("\"legs\":{\"total\":5,\"committed\":2,\"running\":2,"
                      "\"pending\":1,\"staged\":0}"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("\"frames\":{\"received\":7,\"dropped\":3}"),
            std::string::npos)
      << body;
  // Worker 0 is fresh, worker 1 exceeds the 2 s staleness threshold.
  EXPECT_NE(body.find("{\"worker\":0,\"leg\":2,\"attempt\":1,"
                      "\"heartbeat_age_s\":0.1,\"frames\":4,"
                      "\"stale\":false}"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("{\"worker\":1,\"leg\":3,\"attempt\":2,"
                      "\"heartbeat_age_s\":5,\"frames\":3,\"stale\":true}"),
            std::string::npos)
      << body;
}

TEST(MonitorServer, FleetHeartbeatAgesStaleCorrectAtScrapeTime) {
  // A driver that publishes once and then wedges must read as stale too:
  // the server adds the time since the last fleet publish to every age.
  double now = 10.0;
  MonitorServerOptions options;
  options.clock = [&now] { return now; };
  MonitorServer server(options);
  telemetry::FleetStatus fleet;
  fleet.workers_configured = 1;
  fleet.active = {{0, 0, 1, 0.05, 1}};
  server.PublishFleet(fleet);

  EXPECT_NE(BodyOf(server.HandleGet("/fleet")).find("\"stale\":false"),
            std::string::npos);
  now = 20.0;  // 10 s later, no new publish.
  const std::string body = BodyOf(server.HandleGet("/fleet"));
  EXPECT_NE(body.find("\"heartbeat_age_s\":10.05"), std::string::npos)
      << body;
  EXPECT_NE(body.find("\"stale\":true"), std::string::npos) << body;
}

TEST(MonitorServer, MetricsFederateWorkerSeriesWithLabels) {
  MonitorServerOptions options;
  options.clock = [] { return 0.0; };
  MonitorServer server(options);

  telemetry::FederatedRegistry registry;
  telemetry::WorkerFrame frame;
  frame.leg = 0;
  frame.seq = 1;
  {
    telemetry::Recorder scratch;
    scratch.counter("policy.full_refreshes").Add(11);
    frame.delta = scratch.Snapshot();
  }
  registry.Absorb("0", frame);
  frame.leg = 1;
  frame.frames_dropped = 2;
  registry.Absorb("1", frame);

  telemetry::Recorder recorder;
  recorder.counter("runtime.legs").Add(2);
  server.Publish(recorder);
  server.PublishFederation(registry);
  server.PublishFleet(DemoFleet());

  const std::string body = BodyOf(server.HandleGet("/metrics"));
  // Per-worker series carry {worker,leg} labels under the fed_ namespace.
  EXPECT_NE(body.find("# TYPE vrl_fed_policy_full_refreshes_total counter"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("vrl_fed_policy_full_refreshes_total{worker=\"0\","
                      "leg=\"leg0\"} 11"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("vrl_fed_policy_full_refreshes_total{worker=\"1\","
                      "leg=\"leg1\"} 11"),
            std::string::npos)
      << body;
  // Federation meta counters expose the exact drop accounting.
  EXPECT_NE(body.find("vrl_fed_frames_total 2"), std::string::npos) << body;
  EXPECT_NE(body.find("vrl_fed_frames_dropped_total 2"), std::string::npos)
      << body;
  // Fleet liveness gauges ride along for the watchdog and dashboards.
  EXPECT_NE(body.find("vrl_fleet_workers_configured 2"), std::string::npos)
      << body;
  EXPECT_NE(body.find("vrl_fleet_max_heartbeat_age_s 5"), std::string::npos)
      << body;
  EXPECT_NE(body.find("vrl_fleet_crashes_total 1"), std::string::npos)
      << body;
}

TEST(MonitorServer, FleetGaugesRenderOnceWhenSampledViewCarriesThem) {
  // The fleet glue samples fleet.* gauges into the snapshot for the
  // watchdog; /metrics must elide that copy in favour of the
  // stale-corrected fleet appendix, or scrapes carry duplicate TYPE lines
  // and fail the exposition grammar (scripts/check_metrics.py).
  MonitorServerOptions options;
  options.clock = [] { return 0.0; };
  MonitorServer server(options);
  telemetry::Recorder view;
  view.gauge("fleet.workers_active").Set(2.0);
  view.gauge("fleet.max_heartbeat_age_s").Set(0.1);
  server.Publish(view);
  server.PublishFleet(DemoFleet());

  const std::string body = BodyOf(server.HandleGet("/metrics"));
  const auto count = [&body](std::string_view needle) {
    std::size_t n = 0;
    for (std::size_t at = body.find(needle); at != std::string::npos;
         at = body.find(needle, at + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("# TYPE vrl_fleet_workers_active gauge"), 1u) << body;
  EXPECT_EQ(count("# TYPE vrl_fleet_max_heartbeat_age_s gauge"), 1u) << body;
  // The appendix value (publish-time age 5 from DemoFleet) wins over the
  // sampled copy.
  EXPECT_NE(body.find("vrl_fleet_max_heartbeat_age_s 5"), std::string::npos)
      << body;
  EXPECT_EQ(body.find("vrl_fleet_max_heartbeat_age_s 0.1"),
            std::string::npos)
      << body;
}

TEST(MonitorServer, RunsEndpointSplicesLegProgress) {
  MonitorServer server;
  LegProgress progress;
  progress.campaign = "fault_campaign";
  progress.total = 3;
  progress.committed = 2;
  progress.running = 1;
  progress.resumed = 1;
  server.PublishLegProgress(progress);
  const std::string body = BodyOf(server.HandleGet("/runs"));
  EXPECT_NE(body.find("\"legs\":{\"campaign\":\"fault_campaign\","
                      "\"total\":3,\"committed\":2,\"running\":1,"
                      "\"pending\":0,\"staged\":0,\"resumed\":1}"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("\"runs\":["), std::string::npos) << body;
}

TEST(MonitorServer, EphemeralBindAnnouncesTheChosenPort) {
  MonitorServerOptions options;
  options.port = 0;
  options.announce = true;
  testing::internal::CaptureStderr();
  MonitorServer server(options);
  const std::string log = testing::internal::GetCapturedStderr();
  EXPECT_GT(server.port(), 0);
  const std::string expected = "monitor: serving on http://127.0.0.1:" +
                               std::to_string(server.port());
  EXPECT_NE(log.find(expected), std::string::npos) << log;
  // The announced endpoint really serves.
  EXPECT_EQ(StatusOf(HttpGet(server.port(), "/readyz")), 503);
}

TEST(FleetIntegration, HungWorkerGoesStaleAndFlipsTheWatchdogToDegraded) {
  // End-to-end over the real supervisor: a child that hangs (the chaos
  // hook, docs/RESILIENCE.md) stops heartbeating, the fleet callback sees
  // its age grow, /fleet renders it stale, and the max_worker_stale_s rule
  // degrades the watchdog — while the run itself still completes by
  // degrading the leg in-process.
  ::setenv("VRL_WORKER_CRASH", "hang", 1);
  MonitorServerOptions server_options;
  server_options.fleet_stale_after_s = 0.1;
  MonitorServer server(server_options);
  WatchdogRules rules;
  rules.max_worker_stale_s = 0.1;
  rules.breach_samples = 1;
  SloWatchdog watchdog(rules);

  bool saw_stale = false;
  bool saw_degraded = false;
  double now_s = 0.0;
  runtime::RuntimeOptions options;
  options.workers = 1;
  options.leg_timeout_s = 0.5;
  options.max_retries = 1;
  options.degrade_after = 1;
  options.fleet_interval_s = 0.02;
  options.on_fleet = [&](const telemetry::FleetStatus& status) {
    server.PublishFleet(status);
    if (BodyOf(server.HandleGet("/fleet")).find("\"stale\":true") !=
        std::string::npos) {
      saw_stale = true;
    }
    double max_age = 0.0;
    for (const telemetry::FleetWorkerStatus& worker : status.active) {
      max_age = std::max(max_age, worker.heartbeat_age_s);
    }
    telemetry::Recorder view;
    view.gauge("fleet.max_heartbeat_age_s").Set(max_age);
    now_s += 1.0;
    if (watchdog.Sample(view.Snapshot(), now_s) == HealthState::kDegraded) {
      saw_degraded = true;
    }
  };

  const auto payloads = runtime::RunJournaledLegs(
      "hang_fleet", 61, 1,
      [](std::size_t leg) { return "leg" + std::to_string(leg); }, options,
      nullptr);
  ::unsetenv("VRL_WORKER_CRASH");
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], "leg0");
  EXPECT_TRUE(saw_stale);
  EXPECT_TRUE(saw_degraded);
}

}  // namespace
}  // namespace vrl::obs
