// Tests for causal span tracing and the refresh-lineage channel
// (src/telemetry/tracing.hpp, docs/TRACING.md).
//
// Three layers:
//  1. Tracer semantics pinned by the header: label interning, span
//     nesting and LIFO closing, the oldest-win span cap, the newest-win
//     lineage ring, and Absorb's id/label/group remapping.
//  2. Exporter structure: Chrome trace_event JSON (metadata, X and i
//     events, the synthetic lineage process) and the JSONL form with its
//     summary accounting.
//  3. The acceptance contracts end to end: a VRL-Access run records
//     activation-reset lineage, the adaptive campaign records demotion
//     lineage, and the evaluation suite's merged trace exports
//     byte-identically at 1, 2 and 8 threads.

#include "telemetry/tracing.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/experiments.hpp"
#include "core/vrl_system.hpp"
#include "retention/vrt.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/trace_export.hpp"
#include "trace/synthetic.hpp"

namespace vrl::telemetry {
namespace {

// ---------------------------------------------------------------------------
// 1a. Labels and track groups
// ---------------------------------------------------------------------------

TEST(Tracer, InternIsIdempotentAndOrdered) {
  Tracer tracer;
  EXPECT_EQ(tracer.Intern("alpha"), 0u);
  EXPECT_EQ(tracer.Intern("beta"), 1u);
  EXPECT_EQ(tracer.Intern("alpha"), 0u);
  EXPECT_EQ(tracer.label_count(), 2u);
  EXPECT_EQ(tracer.label(1), "beta");
}

TEST(Tracer, LabelThrowsOutOfRange) {
  const Tracer tracer;
  EXPECT_THROW(tracer.label(0), ConfigError);
}

TEST(Tracer, TrackGroupsAreOneBasedAndLabelled) {
  Tracer tracer;
  EXPECT_EQ(tracer.NewTrackGroup("run:VRL"), 1u);
  EXPECT_EQ(tracer.NewTrackGroup("run:RAIDR"), 2u);
  ASSERT_EQ(tracer.groups().size(), 2u);
  EXPECT_EQ(tracer.label(tracer.groups()[1]), "run:RAIDR");
}

// ---------------------------------------------------------------------------
// 1b. Span nesting
// ---------------------------------------------------------------------------

TEST(Tracer, SpansNestViaTheOpenStack) {
  Tracer tracer;
  const SpanId outer = tracer.BeginSpan("outer", 10);
  const SpanId inner = tracer.BeginSpan("inner", 20);
  EXPECT_EQ(tracer.open_depth(), 2u);
  tracer.EndSpan(inner, 30);
  tracer.EndSpan(outer, 40);
  EXPECT_EQ(tracer.open_depth(), 0u);

  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[0].parent, SpanId{0});
  EXPECT_EQ(tracer.spans()[1].parent, outer);
  EXPECT_EQ(tracer.spans()[1].start, Cycles{20});
  EXPECT_EQ(tracer.spans()[1].end, Cycles{30});
}

TEST(Tracer, EndSpanEnforcesLifoOrder) {
  Tracer tracer;
  const SpanId outer = tracer.BeginSpan("outer", 0);
  tracer.BeginSpan("inner", 1);
  EXPECT_THROW(tracer.EndSpan(outer, 2), ConfigError);
}

TEST(Tracer, EndSpanWithNothingOpenThrows) {
  Tracer tracer;
  EXPECT_THROW(tracer.EndSpan(1, 0), ConfigError);
}

TEST(Tracer, CompleteSpanParentsToInnermostOpenWithoutTouchingTheStack) {
  Tracer tracer;
  const SpanId outer = tracer.BeginSpan("outer", 0);
  tracer.CompleteSpan("burst", 5, 9, 1, 3, 4, 2);
  EXPECT_EQ(tracer.open_depth(), 1u);
  tracer.EndSpan(outer, 10);

  ASSERT_EQ(tracer.spans().size(), 2u);
  const SpanRecord& burst = tracer.spans()[1];
  EXPECT_EQ(burst.parent, outer);
  EXPECT_EQ(burst.group, 1u);
  EXPECT_EQ(burst.track, 3u);
  EXPECT_EQ(burst.a, 4);
  EXPECT_EQ(burst.b, 2);
}

TEST(Tracer, PreInternedCompleteSpanMatchesStringForm) {
  Tracer by_string;
  by_string.CompleteSpan("burst", 1, 2);
  Tracer by_label;
  by_label.CompleteSpan(by_label.Intern("burst"), 1, 2);
  EXPECT_EQ(by_string.spans(), by_label.spans());
}

TEST(ScopedSpan, BracketsTheClockAndEndsIdempotently) {
  Tracer tracer;
  Cycles clock = 100;
  {
    ScopedSpan span(&tracer, "scoped", clock);
    clock = 250;
    span.End();
    clock = 999;  // after End(), further clock movement is ignored
    span.End();   // idempotent
  }
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].start, Cycles{100});
  EXPECT_EQ(tracer.spans()[0].end, Cycles{250});
  EXPECT_EQ(tracer.open_depth(), 0u);
}

TEST(ScopedSpan, NullTracerIsSafe) {
  Cycles clock = 0;
  ScopedSpan span(nullptr, "noop", clock);
  span.End();
  EXPECT_EQ(span.id(), SpanId{0});
}

// ---------------------------------------------------------------------------
// 1c. Caps: oldest-win spans, newest-win lineage ring
// ---------------------------------------------------------------------------

TEST(Tracer, SpanCapKeepsOldestAndStillAllocatesIds) {
  TracerOptions options;
  options.max_spans = 2;
  Tracer tracer(options);
  const SpanId a = tracer.BeginSpan("a", 0);
  const SpanId b = tracer.BeginSpan("b", 1);
  const SpanId c = tracer.BeginSpan("c", 2);  // dropped, id still fresh
  const SpanId d = tracer.BeginSpan("d", 3);  // dropped child of c
  EXPECT_LT(b, c);
  EXPECT_LT(c, d);
  tracer.EndSpan(d, 4);
  tracer.EndSpan(c, 5);
  tracer.EndSpan(b, 6);
  tracer.EndSpan(a, 7);

  EXPECT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.dropped_spans(), 2u);
  EXPECT_EQ(tracer.recorded_spans(), 4u);
  // The retained spans are the oldest two.
  EXPECT_EQ(tracer.label(tracer.spans()[0].name), "a");
  EXPECT_EQ(tracer.label(tracer.spans()[1].name), "b");
}

TEST(Tracer, LineageRingKeepsNewest) {
  TracerOptions options;
  options.max_lineage = 4;
  Tracer tracer(options);
  for (std::uint64_t i = 1; i <= 7; ++i) {
    tracer.Lineage({EventKind::kFullRefresh, i, i, 0, 0, 0.0});
  }
  EXPECT_EQ(tracer.recorded_lineage(), 7u);
  EXPECT_EQ(tracer.dropped_lineage(), 3u);
  const auto retained = tracer.LineageRetained();
  ASSERT_EQ(retained.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(retained[i].cycle, Cycles{4 + i}) << "slot " << i;
  }
}

TEST(Tracer, ZeroLineageCapCountsEverythingAsDropped) {
  TracerOptions options;
  options.max_lineage = 0;
  Tracer tracer(options);
  tracer.Lineage({EventKind::kDemotion, 1, 2, 0, 3, 0.0});
  EXPECT_TRUE(tracer.LineageRetained().empty());
  EXPECT_EQ(tracer.dropped_lineage(), 1u);
}

// ---------------------------------------------------------------------------
// 1d. Absorb: the shard-merge path
// ---------------------------------------------------------------------------

TEST(Tracer, AbsorbRemapsIdsLabelsAndGroups) {
  Tracer sink;
  sink.Intern("shared");
  const std::uint32_t sink_group = sink.NewTrackGroup("run:A");
  sink.CompleteSpan("shared", 0, 1, sink_group);

  Tracer shard;
  const std::uint32_t shard_group = shard.NewTrackGroup("run:B");
  const SpanId outer = shard.BeginSpan("outer", 10, shard_group);
  shard.CompleteSpan("shared", 11, 12, shard_group, 7);
  shard.EndSpan(outer, 20);
  shard.Lineage({EventKind::kMprsfReset, 15, 42, shard.Intern("cause"), 1,
                 0.5});

  sink.Absorb(shard);

  // Groups: B appended after A; its spans remapped onto the new id.
  ASSERT_EQ(sink.groups().size(), 2u);
  EXPECT_EQ(sink.label(sink.groups()[1]), "run:B");
  ASSERT_EQ(sink.spans().size(), 3u);
  const SpanRecord& merged_outer = sink.spans()[1];
  const SpanRecord& merged_inner = sink.spans()[2];
  EXPECT_EQ(sink.label(merged_outer.name), "outer");
  EXPECT_EQ(merged_outer.group, 2u);
  // Parent links survive the id offset; "shared" resolves to one label id
  // in the merged table.
  EXPECT_EQ(merged_inner.parent, merged_outer.id);
  EXPECT_EQ(merged_inner.name, sink.spans()[0].name);
  EXPECT_EQ(merged_inner.track, 7u);
  // Ids stay unique and dense across the merge.
  EXPECT_NE(merged_outer.id, sink.spans()[0].id);

  const auto lineage = sink.LineageRetained();
  ASSERT_EQ(lineage.size(), 1u);
  EXPECT_EQ(sink.label(lineage[0].cause), "cause");
  EXPECT_EQ(lineage[0].row, 42u);
}

TEST(Tracer, AbsorbWithOpenSpansThrows) {
  Tracer sink;
  Tracer shard;
  shard.BeginSpan("still-open", 0);
  EXPECT_THROW(sink.Absorb(shard), ConfigError);
}

TEST(Tracer, AbsorbAccumulatesDropCounts) {
  TracerOptions small;
  small.max_spans = 1;
  small.max_lineage = 1;
  Tracer sink(small);
  sink.CompleteSpan("kept", 0, 1);
  sink.Lineage({EventKind::kFullRefresh, 0, 0, 0, 0, 0.0});

  Tracer shard(small);
  shard.CompleteSpan("dropped-at-sink", 2, 3);
  shard.CompleteSpan("dropped-at-shard", 4, 5);
  shard.Lineage({EventKind::kFullRefresh, 1, 1, 0, 0, 0.0});
  shard.Lineage({EventKind::kFullRefresh, 2, 2, 0, 0, 0.0});

  sink.Absorb(shard);
  // Spans: sink keeps its oldest; the shard's retained span and the
  // shard's own drop both count as dropped here.
  EXPECT_EQ(sink.spans().size(), 1u);
  EXPECT_EQ(sink.recorded_spans(), 3u);
  // Lineage: newest-win — the shard's retained record displaced the
  // sink's.  recorded counts each record once (1 sink + 2 shard); the
  // displaced sink record and the shard-side drop land in dropped.
  const auto lineage = sink.LineageRetained();
  ASSERT_EQ(lineage.size(), 1u);
  EXPECT_EQ(lineage[0].cycle, Cycles{2});
  EXPECT_EQ(sink.recorded_lineage(), 3u);
  EXPECT_EQ(sink.dropped_lineage(), 2u);
  EXPECT_EQ(sink.recorded_lineage(),
            sink.lineage_size() + sink.dropped_lineage());
}

// ---------------------------------------------------------------------------
// 2. Exporters
// ---------------------------------------------------------------------------

Tracer SmallTrace() {
  Tracer tracer;
  const std::uint32_t group = tracer.NewTrackGroup("run:VRL-Access");
  const SpanId bank = tracer.BeginSpan("bank_run", 0, group, 0);
  tracer.CompleteSpan("refresh_burst", 10, 14, group, 0, 3, 1);
  tracer.EndSpan(bank, 100);
  tracer.Lineage({EventKind::kMprsfReset, 42, 7, tracer.Intern("VRL-Access"),
                  2, 0.0});
  return tracer;
}

TEST(TraceExport, ChromeTraceIsStructurallySound) {
  const Tracer tracer = SmallTrace();
  std::ostringstream os;
  WriteChromeTrace(os, tracer);
  const std::string out = os.str();

  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  // Process metadata: driver, the run group, and the synthetic lineage
  // process (pid = groups + 1 = 2).
  EXPECT_NE(out.find(R"("name":"driver")"), std::string::npos);
  EXPECT_NE(out.find(R"("name":"run:VRL-Access")"), std::string::npos);
  EXPECT_NE(out.find(R"("name":"lineage")"), std::string::npos);
  // The burst span with its payloads.
  EXPECT_NE(out.find(R"("name":"refresh_burst","cat":"span","ph":"X","ts":10,"dur":4)"),
            std::string::npos);
  // The activation-reset instant event on the lineage process.
  EXPECT_NE(out.find(R"("name":"mprsf_reset","cat":"lineage","ph":"i")"),
            std::string::npos);
  EXPECT_NE(out.find(R"("cause":"VRL-Access")"), std::string::npos);
}

TEST(TraceExport, JsonlSummariesBalance) {
  TracerOptions options;
  options.max_lineage = 1;
  Tracer tracer(options);
  tracer.CompleteSpan("s", 0, 1);
  tracer.Lineage({EventKind::kFullRefresh, 0, 0, 0, 0, 0.0});
  tracer.Lineage({EventKind::kFullRefresh, 1, 0, 0, 0, 0.0});

  std::ostringstream os;
  WriteTraceJsonl(os, tracer);
  const std::string out = os.str();
  EXPECT_NE(out.find(R"({"type":"span_summary","recorded":1,"retained":1,"dropped":0})"),
            std::string::npos);
  EXPECT_NE(out.find(R"({"type":"lineage_summary","recorded":2,"retained":1,"dropped":1})"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// 3. End-to-end acceptance contracts
// ---------------------------------------------------------------------------

RecorderOptions TracingOptions() {
  RecorderOptions options;
  options.enable_tracing = true;
  options.tracing.lineage_ops = true;
  return options;
}

TEST(TracingIntegration, VrlAccessRunRecordsActivationResetLineage) {
  core::VrlConfig config;
  config.banks = 1;
  const core::VrlSystem system(config);
  Recorder recorder(TracingOptions());

  const Cycles horizon = system.HorizonForWindows(2);
  Rng rng(7);
  const auto records = trace::GenerateTrace(
      trace::SuiteWorkload("streamcluster"), system.Geometry(), horizon, rng);
  const auto requests =
      trace::MapToRequests(records, trace::AddressMapper(system.Geometry()));
  system.Simulate(core::PolicyKind::kVrlAccess, requests, horizon, &recorder);

  ASSERT_NE(recorder.tracer(), nullptr);
  std::size_t resets = 0;
  std::size_t refresh_ops = 0;
  for (const LineageRecord& record : recorder.tracer()->LineageRetained()) {
    resets += record.kind == EventKind::kMprsfReset ? 1 : 0;
    refresh_ops += record.kind == EventKind::kFullRefresh ||
                           record.kind == EventKind::kPartialRefresh
                       ? 1
                       : 0;
    if (record.kind == EventKind::kMprsfReset) {
      EXPECT_EQ(recorder.tracer()->label(record.cause), "VRL-Access");
    }
  }
  EXPECT_GT(resets, 0u) << "no activation-reset lineage in a VRL-Access run";
  EXPECT_GT(refresh_ops, 0u);
  // The run's spans land on a dedicated track group.
  ASSERT_FALSE(recorder.tracer()->groups().empty());
  EXPECT_EQ(recorder.tracer()->label(recorder.tracer()->groups()[0]),
            "run:VRL-Access");
}

TEST(TracingIntegration, TransitionsOnlyModeSkipsTheOpFirehose) {
  core::VrlConfig config;
  config.banks = 1;
  const core::VrlSystem system(config);
  RecorderOptions options;
  options.enable_tracing = true;  // lineage_ops stays false
  Recorder recorder(options);

  system.Simulate(core::PolicyKind::kVrlAccess, {},
                  system.HorizonForWindows(1), &recorder);
  ASSERT_NE(recorder.tracer(), nullptr);
  // No per-op lineage — but the run still produced spans.
  EXPECT_EQ(recorder.tracer()->recorded_lineage(), 0u);
  EXPECT_GT(recorder.tracer()->recorded_spans(), 0u);
}

TEST(TracingIntegration, AdaptiveCampaignRecordsDemotionLineage) {
  core::VrlConfig config;
  config.banks = 1;
  const core::VrlSystem system(config);
  Recorder recorder(TracingOptions());

  retention::VrtParams vrt;
  vrt.row_fraction = 0.05;
  core::ExperimentOptions options;
  options.windows = 4;
  options.telemetry = &recorder;
  const auto result = core::RunResilienceComparison(
      system, core::PolicyKind::kVrl, vrt, options);
  EXPECT_GT(result.jedec.refresh_busy_cycles, 0u);

  ASSERT_NE(recorder.tracer(), nullptr);
  std::size_t demotions = 0;
  std::size_t failures = 0;
  for (const LineageRecord& record : recorder.tracer()->LineageRetained()) {
    demotions += record.kind == EventKind::kDemotion ? 1 : 0;
    failures += record.kind == EventKind::kSensingFailure ? 1 : 0;
  }
  EXPECT_GT(demotions, 0u) << "adaptive degradation left no demotion lineage";
  EXPECT_GT(failures, 0u) << "campaign sensing failures left no lineage";
}

std::string TraceBytes(const Recorder& recorder) {
  std::ostringstream chrome;
  WriteChromeTrace(chrome, *recorder.tracer());
  std::ostringstream jsonl;
  WriteTraceJsonl(jsonl, *recorder.tracer());
  return chrome.str() + jsonl.str();
}

TEST(TracingIntegration, SuiteTraceIsByteIdenticalAcrossThreads) {
  core::VrlConfig config;
  config.banks = 1;
  const core::VrlSystem system(config);

  std::string reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    Recorder sink(TracingOptions());
    core::ExperimentOptions options;
    options.windows = 2;
    options.threads = threads;
    options.telemetry = &sink;
    const auto results = core::RunEvaluationSuite(system, options);
    EXPECT_FALSE(results.empty());
    ASSERT_NE(sink.tracer(), nullptr);
    EXPECT_GT(sink.tracer()->recorded_spans(), 0u);
    const std::string bytes = TraceBytes(sink);
    if (threads == 1) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "trace diverged at " << threads
                                  << " threads";
    }
  }
}

}  // namespace
}  // namespace vrl::telemetry
