// Tests for the crash-tolerant execution runtime (src/runtime/): the leg
// journal's durability and corruption handling, the payload codec's exact
// round trips, the supervised worker pool's retry/degradation ladder, and
// the headline guarantee — a crashed-and-resumed campaign produces results
// byte-identical to an uninterrupted one.

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/experiments.hpp"
#include "core/sweep.hpp"
#include "runtime/codec.hpp"
#include "runtime/journal.hpp"
#include "runtime/resilient.hpp"
#include "runtime/runner.hpp"
#include "runtime/supervisor.hpp"
#include "telemetry/recorder.hpp"

namespace {

using namespace vrl;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// A simple deterministic leg function whose payload identifies the leg.
std::string DemoLeg(std::size_t leg) {
  return "leg " + std::to_string(leg) + "\nsquare " +
         std::to_string(leg * leg) + "\n";
}

/// Environment-variable guard: sets on construction, unsets on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

// -- FNV-1a 64 ---------------------------------------------------------------

TEST(Fnv1a64, MatchesPublishedVectors) {
  // Offset basis and the classic reference vectors — scripts/check_journal.py
  // re-implements this hash and must agree forever.
  EXPECT_EQ(runtime::Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(runtime::Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(runtime::Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64, ToHex16IsFixedWidthLowercase) {
  EXPECT_EQ(runtime::ToHex16(0), "0000000000000000");
  EXPECT_EQ(runtime::ToHex16(0xcbf29ce484222325ULL), "cbf29ce484222325");
}

// -- Codec -------------------------------------------------------------------

TEST(Codec, DoubleRoundTripsExactly) {
  const double values[] = {0.0,     -0.0,   1.0,    0.1,
                           -1.5e-300, 3.0e300, 1.0 / 3.0};
  for (const double v : values) {
    EXPECT_EQ(runtime::DecodeDouble(runtime::EncodeDouble(v)), v);
  }
  EXPECT_TRUE(std::isnan(runtime::DecodeDouble(runtime::EncodeDouble(
      std::nan("")))));
  EXPECT_EQ(runtime::DecodeDouble("inf"), HUGE_VAL);
  EXPECT_EQ(runtime::DecodeDouble("-inf"), -HUGE_VAL);
}

TEST(Codec, TokenEscapingRoundTrips) {
  const std::string cases[] = {"", "plain", "two words", "100%",
                               "tab\tnewline\ncr\r", "%%% %"};
  for (const std::string& text : cases) {
    const std::string token = runtime::EscapeToken(text);
    EXPECT_EQ(token.find(' '), std::string::npos) << token;
    EXPECT_EQ(token.find('\n'), std::string::npos) << token;
    EXPECT_EQ(runtime::UnescapeToken(token), text);
  }
  // The empty string needs a non-empty token to survive tokenization.
  EXPECT_FALSE(runtime::EscapeToken("").empty());
}

TEST(Codec, SnapshotRoundTripDropsTimersOnly) {
  telemetry::Recorder recorder;
  recorder.metrics().GetCounter("campaign.windows").Add(7);
  recorder.metrics().GetGauge("adaptive.margin").Set(0.125);
  auto& hist = recorder.metrics().GetHistogram("policy.bin", {1.0, 2.0});
  hist.Observe(0.5);
  hist.Observe(5.0);
  recorder.metrics().GetTimer("time.phase.solve").Record(1.0);

  std::ostringstream os;
  runtime::EncodeSnapshot(os, recorder.Snapshot());
  runtime::LineCursor cursor(os.str());
  const telemetry::MetricsSnapshot decoded = runtime::DecodeSnapshot(cursor);
  EXPECT_TRUE(cursor.AtEnd());

  EXPECT_EQ(decoded.metrics.count("time.phase.solve"), 0u);
  ASSERT_EQ(decoded.metrics.count("campaign.windows"), 1u);
  EXPECT_EQ(decoded.metrics.at("campaign.windows").count, 7u);
  EXPECT_EQ(decoded.metrics.at("adaptive.margin").value, 0.125);
  ASSERT_EQ(decoded.metrics.count("policy.bin"), 1u);
  EXPECT_EQ(decoded.metrics.at("policy.bin").counts.size(), 3u);

  // Re-encoding the decoded snapshot is byte-identical — the codec is a
  // fixed point, which is what resume byte-identity leans on.
  std::ostringstream os2;
  runtime::EncodeSnapshot(os2, decoded);
  EXPECT_EQ(os.str(), os2.str());
}

TEST(Codec, CampaignReportRoundTrips) {
  fault::CampaignReport report;
  report.refreshes = 123;
  report.partial_refreshes = 45;
  report.refresh_busy_cycles = 678900;
  report.detected_failures = 3;
  report.corrected_failures = 2;
  report.unrecovered_failures = 1;
  report.min_margin = -0.25;
  report.adaptive.demotions = 4;
  report.adaptive.in_fallback = true;
  fault::SensingFailureEvent event;
  event.at_s = 0.0625;
  event.row = 42;
  event.margin = -0.5;
  event.was_full = true;
  event.corrected = false;
  report.events.push_back(event);

  std::ostringstream os;
  runtime::EncodeCampaignReport(os, report);
  runtime::LineCursor cursor(os.str());
  EXPECT_EQ(runtime::DecodeCampaignReport(cursor), report);
  EXPECT_TRUE(cursor.AtEnd());
}

TEST(Codec, SweepResultRoundTrips) {
  core::SweepResult result;
  result.point.nbits = 3;
  result.point.partial_target = 0.9;
  result.point.subarrays = 4;
  result.vrl_normalized = 0.625;
  result.mean_mprsf = 2.5;
  result.clamped_rows = 17;

  std::ostringstream os;
  runtime::EncodeSweepResult(os, result);
  runtime::LineCursor cursor(os.str());
  EXPECT_EQ(runtime::DecodeSweepResult(cursor), result);
}

// -- LegJournal --------------------------------------------------------------

TEST(LegJournal, CreatesValidatesAndReloads) {
  const std::string path = TempPath("journal_basic.jsonl");
  std::remove(path.c_str());
  {
    runtime::LegJournal journal(path, "demo", 0x1234, 3);
    EXPECT_TRUE(journal.committed().empty());
    journal.Append(0, DemoLeg(0));
    journal.Append(1, DemoLeg(1));
  }
  runtime::LegJournal reopened(path, "demo", 0x1234, 3);
  ASSERT_EQ(reopened.committed().size(), 2u);
  EXPECT_EQ(reopened.committed()[0], DemoLeg(0));
  EXPECT_EQ(reopened.committed()[1], DemoLeg(1));
  EXPECT_FALSE(reopened.dropped_tail());
}

TEST(LegJournal, OutOfOrderAppendThrows) {
  const std::string path = TempPath("journal_order.jsonl");
  std::remove(path.c_str());
  runtime::LegJournal journal(path, "demo", 1, 3);
  EXPECT_THROW(journal.Append(1, "skipping leg 0"), ConfigError);
}

TEST(LegJournal, TornFinalLineIsDroppedAndRerun) {
  const std::string path = TempPath("journal_torn.jsonl");
  std::remove(path.c_str());
  {
    runtime::LegJournal journal(path, "demo", 2, 3);
    journal.Append(0, DemoLeg(0));
    journal.Append(1, DemoLeg(1));
  }
  // Simulate a crash mid-append: chop bytes off the final line.
  std::string contents = ReadFile(path);
  contents.resize(contents.size() - 10);
  std::ofstream(path, std::ios::trunc) << contents;

  runtime::LegJournal reopened(path, "demo", 2, 3);
  EXPECT_TRUE(reopened.dropped_tail());
  ASSERT_EQ(reopened.committed().size(), 1u);
  EXPECT_EQ(reopened.committed()[0], DemoLeg(0));
}

TEST(LegJournal, EarlierCorruptionIsAHardError) {
  const std::string path = TempPath("journal_corrupt.jsonl");
  std::remove(path.c_str());
  {
    runtime::LegJournal journal(path, "demo", 2, 3);
    journal.Append(0, DemoLeg(0));
    journal.Append(1, DemoLeg(1));
  }
  // Flip a payload byte in the *first* leg record (not the final line).
  std::string contents = ReadFile(path);
  const std::size_t at = contents.find("square 0");
  ASSERT_NE(at, std::string::npos);
  contents[at] = 'X';
  std::ofstream(path, std::ios::trunc) << contents;
  EXPECT_THROW(runtime::LegJournal(path, "demo", 2, 3), ParseError);
}

TEST(LegJournal, HeaderMismatchRefusesResume) {
  const std::string path = TempPath("journal_header.jsonl");
  std::remove(path.c_str());
  { runtime::LegJournal journal(path, "demo", 7, 3); }
  EXPECT_THROW(runtime::LegJournal(path, "demo", 8, 3), ConfigError);
  EXPECT_THROW(runtime::LegJournal(path, "other", 7, 3), ConfigError);
  EXPECT_THROW(runtime::LegJournal(path, "demo", 7, 4), ConfigError);
}

TEST(LegJournal, PayloadsSurviveEscapingHostileBytes) {
  const std::string path = TempPath("journal_escape.jsonl");
  std::remove(path.c_str());
  const std::string hostile = "quote \" slash \\ newline \n tab \t done";
  {
    runtime::LegJournal journal(path, "demo", 3, 1);
    journal.Append(0, hostile);
  }
  runtime::LegJournal reopened(path, "demo", 3, 1);
  ASSERT_EQ(reopened.committed().size(), 1u);
  EXPECT_EQ(reopened.committed()[0], hostile);
}

// -- ParallelForCommit -------------------------------------------------------

TEST(ParallelForCommit, CommitsInOrderOnTheCallingThread) {
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::string> slots(64);
  std::vector<std::size_t> order;
  ParallelForCommit(
      "test_commit", slots.size(),
      [&](std::size_t i) { slots[i] = std::to_string(i); },
      [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_EQ(slots[i], std::to_string(i));
        order.push_back(i);
      },
      4);
  ASSERT_EQ(order.size(), 64u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ParallelForCommit, BodyExceptionPropagates) {
  EXPECT_THROW(ParallelForCommit(
                   "test_commit_throw", 8,
                   [](std::size_t i) {
                     if (i == 5) {
                       throw ConfigError("leg 5 is cursed");
                     }
                   },
                   [](std::size_t) {}, 2),
               ConfigError);
}

// -- RunJournaledLegs --------------------------------------------------------

TEST(RunJournaledLegs, NoJournalRunsEverythingInProcess) {
  runtime::RuntimeOptions options;
  runtime::RunnerStats stats;
  const auto payloads =
      runtime::RunJournaledLegs("demo", 1, 4, DemoLeg, options, &stats);
  ASSERT_EQ(payloads.size(), 4u);
  EXPECT_EQ(payloads[2], DemoLeg(2));
  EXPECT_EQ(stats.executed, 4u);
  EXPECT_EQ(stats.resumed, 0u);
  EXPECT_EQ(stats.journal_commits, 0u);
}

TEST(RunJournaledLegs, ResumeSkipsCommittedLegs) {
  const std::string path = TempPath("runner_resume.jsonl");
  std::remove(path.c_str());
  runtime::RuntimeOptions options;
  options.journal_path = path;

  // Pre-commit the first two legs, as a crashed run would have.
  {
    runtime::LegJournal journal(path, "demo", 99, 5);
    journal.Append(0, DemoLeg(0));
    journal.Append(1, DemoLeg(1));
  }

  std::vector<std::size_t> executed;
  runtime::RunnerStats stats;
  const auto payloads = runtime::RunJournaledLegs(
      "demo", 99, 5,
      [&](std::size_t leg) {
        executed.push_back(leg);
        return DemoLeg(leg);
      },
      options, &stats);

  EXPECT_EQ(executed, (std::vector<std::size_t>{2, 3, 4}));
  EXPECT_EQ(stats.resumed, 2u);
  EXPECT_EQ(stats.executed, 3u);
  ASSERT_EQ(payloads.size(), 5u);
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(payloads[i], DemoLeg(i));
  }

  // A fully committed journal resumes everything: leg_fn must not run.
  const auto replay = runtime::RunJournaledLegs(
      "demo", 99, 5,
      [](std::size_t) -> std::string {
        ADD_FAILURE() << "leg_fn ran despite a complete journal";
        return "";
      },
      options);
  EXPECT_EQ(replay, payloads);
}

TEST(RunJournaledLegs, RuntimeTelemetryCountsResumes) {
  const std::string path = TempPath("runner_counters.jsonl");
  std::remove(path.c_str());
  {
    runtime::LegJournal journal(path, "demo", 5, 3);
    journal.Append(0, DemoLeg(0));
  }
  telemetry::Recorder runtime_rec;
  runtime::RuntimeOptions options;
  options.journal_path = path;
  options.runtime_telemetry = &runtime_rec;
  runtime::RunJournaledLegs("demo", 5, 3, DemoLeg, options);
  const auto snapshot = runtime_rec.Snapshot();
  EXPECT_EQ(snapshot.metrics.at("runtime.legs_resumed").count, 1u);
  EXPECT_EQ(snapshot.metrics.at("runtime.legs_executed").count, 2u);
  EXPECT_EQ(snapshot.metrics.at("runtime.journal_commits").count, 2u);
}

TEST(RunJournaledLegs, PayloadsAreThreadCountInvariant) {
  core::VrlConfig base;
  std::vector<core::SweepPoint> points(6);
  points[1].nbits = 3;
  points[2].partial_target = 0.9;
  points[3].retention_guardband = 1.2;
  points[4].subarrays = 4;
  points[5].nbits = 1;

  const auto run = [&](std::size_t threads) {
    ScopedThreadCount scoped(threads);
    runtime::RuntimeOptions options;
    return runtime::RunSweep(base, points, trace::SuiteWorkload("facesim"), 2,
                             options);
  };
  const auto at1 = run(1);
  const auto at2 = run(2);
  const auto at8 = run(8);
  EXPECT_EQ(at1, at2);
  EXPECT_EQ(at1, at8);
}

// -- Crash injection + resume (the headline guarantee) -----------------------

TEST(CrashResume, SigkilledRunResumesByteIdentical) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = TempPath("crash_resume.jsonl");
  std::remove(path.c_str());

  runtime::RuntimeOptions options;
  options.journal_path = path;

  // The injector SIGKILLs the process right after the 2nd durable commit —
  // no destructors, no flushes, exactly like a power cut.
  EXPECT_EXIT(
      {
        ::setenv("VRL_CRASH_AFTER_LEG", "2", 1);
        runtime::RunJournaledLegs("crash_demo", 11, 4, DemoLeg, options);
        ::_exit(0);  // Unreachable when the injector fires.
      },
      testing::KilledBySignal(SIGKILL), "");

  // The journal must hold exactly the committed prefix.
  {
    runtime::LegJournal journal(path, "crash_demo", 11, 4);
    ASSERT_EQ(journal.committed().size(), 2u);
  }

  // Resume and compare with an uninterrupted run: byte-identical.
  runtime::RunnerStats stats;
  const auto resumed =
      runtime::RunJournaledLegs("crash_demo", 11, 4, DemoLeg, options, &stats);
  EXPECT_EQ(stats.resumed, 2u);
  const auto clean = runtime::RunJournaledLegs("crash_demo", 11, 4, DemoLeg,
                                               runtime::RuntimeOptions{});
  EXPECT_EQ(resumed, clean);
}

TEST(CrashResume, ExternalSigkillMidCampaignResumes) {
  const std::string path = TempPath("sigkill_resume.jsonl");
  std::remove(path.c_str());

  // Run the campaign in a fork and SIGKILL it from outside once the journal
  // shows progress — the "operator pulls the plug" scenario, no cooperation
  // from the victim.
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    runtime::RuntimeOptions options;
    options.journal_path = path;
    runtime::RunJournaledLegs(
        "ext_kill", 21, 6,
        [](std::size_t leg) {
          if (leg >= 2) {
            // Hold the door open so the parent's SIGKILL lands mid-run.
            std::this_thread::sleep_for(std::chrono::seconds(30));
          }
          return DemoLeg(leg);
        },
        options);
    ::_exit(0);
  }
  // Wait until at least one leg committed, then kill without warning.
  for (int i = 0; i < 500; ++i) {
    std::ifstream is(path);
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    if (text.find("\"index\":1") != std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ::kill(child, SIGKILL);
  int status = 0;
  ::waitpid(child, &status, 0);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  runtime::RuntimeOptions options;
  options.journal_path = path;
  runtime::RunnerStats stats;
  const auto resumed =
      runtime::RunJournaledLegs("ext_kill", 21, 6, DemoLeg, options, &stats);
  EXPECT_GE(stats.resumed, 2u);
  const auto clean = runtime::RunJournaledLegs("ext_kill", 21, 6, DemoLeg,
                                               runtime::RuntimeOptions{});
  EXPECT_EQ(resumed, clean);
}

// -- Supervised workers ------------------------------------------------------

TEST(Workers, HealthyPoolMatchesInProcessExecution) {
  runtime::RuntimeOptions inproc;
  const auto expected =
      runtime::RunJournaledLegs("pool_demo", 31, 5, DemoLeg, inproc);

  runtime::RuntimeOptions workers;
  workers.workers = 2;
  runtime::RunnerStats stats;
  const auto actual =
      runtime::RunJournaledLegs("pool_demo", 31, 5, DemoLeg, workers, &stats);
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(stats.worker_crashes, 0u);
  EXPECT_EQ(stats.leg_degradations, 0u);
  EXPECT_FALSE(stats.pool_degraded);
}

TEST(Workers, CrashingWorkerRetriesThenDegradesPerLeg) {
  ScopedEnv crash("VRL_WORKER_CRASH", "kill");
  telemetry::Recorder runtime_rec;
  runtime::RuntimeOptions options;
  options.workers = 1;
  options.max_retries = 2;
  options.degrade_after = 100;  // Keep the pool alive; degrade per leg.
  options.backoff_base_s = 0.01;
  options.backoff_cap_s = 0.05;
  options.runtime_telemetry = &runtime_rec;

  runtime::RunnerStats stats;
  const auto payloads =
      runtime::RunJournaledLegs("crashy", 41, 2, DemoLeg, options, &stats);

  // Every worker attempt died, yet the campaign finished with correct
  // results: each leg burned its 2 attempts, retried once with backoff,
  // then fell back to in-process execution (which ignores the chaos env).
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], DemoLeg(0));
  EXPECT_EQ(payloads[1], DemoLeg(1));
  EXPECT_EQ(stats.worker_crashes, 4u);  // 2 legs x 2 attempts.
  EXPECT_EQ(stats.worker_retries, 2u);  // 1 retry per leg.
  EXPECT_EQ(stats.leg_degradations, 2u);
  EXPECT_FALSE(stats.pool_degraded);

  const auto snapshot = runtime_rec.Snapshot();
  EXPECT_EQ(snapshot.metrics.at("runtime.worker_crashes").count, 4u);
  EXPECT_EQ(snapshot.metrics.at("runtime.worker_retries").count, 2u);
  EXPECT_EQ(snapshot.metrics.at("runtime.leg_degradations").count, 2u);
}

TEST(Workers, ConsecutiveFailuresDegradeTheWholePool) {
  ScopedEnv crash("VRL_WORKER_CRASH", "kill");
  runtime::RuntimeOptions options;
  options.workers = 2;
  options.max_retries = 3;
  options.degrade_after = 2;  // Give up on workers quickly.
  options.backoff_base_s = 0.01;

  runtime::RunnerStats stats;
  const auto payloads =
      runtime::RunJournaledLegs("doomed", 43, 4, DemoLeg, options, &stats);
  ASSERT_EQ(payloads.size(), 4u);
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(payloads[i], DemoLeg(i));
  }
  EXPECT_TRUE(stats.pool_degraded);
  EXPECT_GE(stats.worker_crashes, 2u);
}

TEST(Workers, HangingWorkerTimesOutAndRecovers) {
  ScopedEnv hang("VRL_WORKER_CRASH", "hang");
  runtime::RuntimeOptions options;
  options.workers = 1;
  options.leg_timeout_s = 0.2;  // A silent child is dead after 200 ms.
  options.max_retries = 1;
  options.degrade_after = 1;

  runtime::RunnerStats stats;
  const auto payloads =
      runtime::RunJournaledLegs("hung", 47, 2, DemoLeg, options, &stats);
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], DemoLeg(0));
  EXPECT_GE(stats.worker_timeouts, 1u);
  EXPECT_TRUE(stats.pool_degraded);
}

TEST(Workers, WorkerErrorFrameSurfacesTheMessage) {
  // A leg that *throws* in the worker reports an 'E' frame; after retries
  // it degrades in-process, where the same throw must finally propagate.
  runtime::RuntimeOptions options;
  options.workers = 1;
  options.max_retries = 1;
  options.degrade_after = 100;
  runtime::RunnerStats stats;
  try {
    runtime::RunJournaledLegs(
        "throwy", 53, 1,
        [](std::size_t) -> std::string {
          throw ConfigError("synthetic leg failure");
        },
        options, &stats);
    FAIL() << "expected the leg exception to propagate";
  } catch (const std::exception& error) {
    EXPECT_NE(std::string(error.what()).find("synthetic leg failure"),
              std::string::npos);
  }
  EXPECT_GE(stats.worker_errors, 1u);
}

TEST(Workers, InvalidOptionsThrow) {
  runtime::WorkerPoolOptions bad;
  bad.workers = 0;
  EXPECT_THROW(runtime::RunSupervised(
                   0, 1, DemoLeg, [](std::size_t, const std::string&) {}, bad,
                   nullptr),
               ConfigError);
  bad.workers = 1;
  bad.leg_timeout_s = -1.0;
  EXPECT_THROW(runtime::RunSupervised(
                   0, 1, DemoLeg, [](std::size_t, const std::string&) {}, bad,
                   nullptr),
               ConfigError);
}

// -- Fleet telemetry federation (docs/OBSERVABILITY.md) ----------------------

/// Decodes the supervisor 'S' frame at the start of `data`, returning the
/// frame and advancing `data` past it.
telemetry::WorkerFrame DecodeSFrame(std::string_view& data) {
  EXPECT_GE(data.size(), 9u);
  EXPECT_EQ(data[0], 'S');
  std::uint64_t length = 0;
  for (int i = 0; i < 8; ++i) {
    length |= static_cast<std::uint64_t>(
                  static_cast<unsigned char>(data[1 + static_cast<std::size_t>(
                                                          i)]))
              << (8 * i);
  }
  EXPECT_GE(data.size(), 9 + length);
  const std::string payload(data.substr(9, length));
  data.remove_prefix(9 + static_cast<std::size_t>(length));
  runtime::LineCursor cursor(payload);
  return runtime::DecodeWorkerFrame(cursor);
}

/// Drains everything currently readable from `fd` without blocking.
std::string DrainPipe(int fd) {
  const int flags = ::fcntl(fd, F_GETFL);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  std::string data;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof buffer);
    if (n <= 0) {
      break;
    }
    data.append(buffer, static_cast<std::size_t>(n));
  }
  ::fcntl(fd, F_SETFL, flags);
  return data;
}

TEST(Codec, WorkerFrameRoundTrips) {
  telemetry::WorkerFrame frame;
  frame.leg = 2;
  frame.attempt = 3;
  frame.seq = 7;
  frame.frames_dropped = 4;
  frame.events_recorded = 99;
  frame.events_dropped = 5;
  telemetry::Recorder scratch;
  scratch.counter("policy.full_refreshes").Add(12);
  scratch.gauge("campaign.progress_cycles").Set(1.5);
  scratch.histogram("policy.slack", {1.0, 2.0, 4.0}).Observe(3.0);
  frame.delta = scratch.Snapshot().WithoutTimers();
  frame.events = {{telemetry::EventKind::kPartialRefresh, 10, 20, 30, 0.25},
                  {telemetry::EventKind::kWorkerRetry, 11, 1, 2, -1.0}};

  std::ostringstream os;
  runtime::EncodeWorkerFrame(os, frame);
  runtime::LineCursor cursor(os.str());
  EXPECT_EQ(runtime::DecodeWorkerFrame(cursor), frame);
}

TEST(Workers, TelemetryFramesFederateAcrossThePool) {
  // Worker children publish their leg's counters as 'S' frames; the driver
  // must see every delta exactly once and fold a correct aggregate, while
  // the result payloads stay byte-identical to in-process execution.
  const auto leg_fn = [](std::size_t leg) {
    if (runtime::InWorkerChild()) {
      telemetry::Recorder rec;
      rec.counter("demo.widgets").Add(leg + 1);
      rec.Record({telemetry::EventKind::kFullRefresh, 0, leg, 0, 0.0});
      runtime::WorkerPublishTelemetry(rec, /*force=*/true);
    }
    return DemoLeg(leg);
  };

  telemetry::FederatedRegistry registry;
  std::vector<telemetry::FleetStatus> fleets;
  runtime::RuntimeOptions options;
  options.workers = 2;
  options.fleet_interval_s = 0.01;
  options.on_worker_frame = [&](std::size_t worker,
                                const telemetry::WorkerFrame& frame) {
    registry.Absorb(std::to_string(worker), frame);
  };
  options.on_fleet = [&](const telemetry::FleetStatus& fleet) {
    fleets.push_back(fleet);
  };

  const auto payloads =
      runtime::RunJournaledLegs("federated", 59, 4, leg_fn, options);
  ASSERT_EQ(payloads.size(), 4u);
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(payloads[i], DemoLeg(i));  // Frames never touch results.
  }

  // 1+2+3+4 widgets across four legs, no frame lost on a healthy pipe.
  EXPECT_EQ(registry.Aggregate().metrics.at("demo.widgets").count, 10u);
  EXPECT_EQ(registry.members().size(), 4u);  // One member per (worker, leg).
  EXPECT_GE(registry.frames_received(), 4u);
  EXPECT_EQ(registry.frames_dropped(), 0u);
  EXPECT_EQ(registry.events_received(), 4u);

  ASSERT_FALSE(fleets.empty());
  const telemetry::FleetStatus& last = fleets.back();
  EXPECT_EQ(last.workers_configured, 2u);
  EXPECT_EQ(last.legs_total, 4u);
  EXPECT_EQ(last.legs_committed, 4u);
  EXPECT_EQ(last.legs_running, 0u);
  EXPECT_EQ(last.legs_pending, 0u);
  EXPECT_EQ(last.frames_received, registry.frames_received());
  EXPECT_FALSE(last.pool_degraded);
}

TEST(Workers, SlowPipeDropsWholeFramesAndCountsThemExactly) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
#ifdef F_SETPIPE_SZ
  ::fcntl(fds[1], F_SETPIPE_SZ, 4096);  // Artificially tiny pipe.
#endif
  const int previous = runtime::SetWorkerPipeForTesting(fds[1]);
  telemetry::Recorder rec;

  rec.counter("demo.ticks").Add(3);
  runtime::WorkerPublishTelemetry(rec, /*force=*/true);  // Delivered.

  // Fill the pipe to the last byte so the next frame cannot even start.
  const int flags = ::fcntl(fds[1], F_GETFL);
  ::fcntl(fds[1], F_SETFL, flags | O_NONBLOCK);
  const char filler = '#';
  while (::write(fds[1], &filler, 1) == 1) {
  }
  ::fcntl(fds[1], F_SETFL, flags);

  rec.counter("demo.ticks").Add(4);
  runtime::WorkerPublishTelemetry(rec, /*force=*/true);  // Dropped whole.

  std::string first = DrainPipe(fds[0]);
  std::string_view first_view = first;
  const telemetry::WorkerFrame delivered = DecodeSFrame(first_view);
  EXPECT_EQ(delivered.seq, 1u);
  EXPECT_EQ(delivered.frames_dropped, 0u);
  EXPECT_EQ(delivered.delta.metrics.at("demo.ticks").count, 3u);
  // Whatever remains is filler, never a torn frame.
  EXPECT_EQ(first_view.find('S'), std::string_view::npos);

  rec.counter("demo.ticks").Add(5);
  runtime::WorkerPublishTelemetry(rec, /*force=*/true);  // Delivered again.
  std::string second = DrainPipe(fds[0]);
  std::string_view second_view = second;
  const telemetry::WorkerFrame recovered = DecodeSFrame(second_view);

  // The delivered frame after a drop carries the accumulated delta (4+5)
  // and the cumulative drop counter — nothing was lost, only freshness.
  EXPECT_EQ(recovered.seq, 2u);
  EXPECT_EQ(recovered.frames_dropped, 1u);
  EXPECT_EQ(recovered.delta.metrics.at("demo.ticks").count, 9u);

  telemetry::FederatedRegistry registry;
  registry.Absorb("0", delivered);
  registry.Absorb("0", recovered);
  EXPECT_EQ(registry.Aggregate().metrics.at("demo.ticks").count, 12u);
  EXPECT_EQ(registry.frames_dropped(), 1u);

  runtime::SetWorkerPipeForTesting(previous);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Workers, TryWriteFrameFinishesAStartedFrame) {
  // A frame larger than the pipe begins with a partial non-blocking write;
  // the rest must be written blocking so the stream stays framed.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
#ifdef F_SETPIPE_SZ
  ::fcntl(fds[1], F_SETPIPE_SZ, 4096);
#endif
  const std::string frame =
      runtime::FrameMessage('S', std::string(32768, 'x'));
  std::string received;
  std::thread reader([&] {
    char buffer[4096];
    for (;;) {
      const ssize_t n = ::read(fds[0], buffer, sizeof buffer);
      if (n <= 0) {
        break;
      }
      received.append(buffer, static_cast<std::size_t>(n));
    }
  });
  EXPECT_TRUE(runtime::TryWriteFrame(fds[1], frame));
  ::close(fds[1]);
  reader.join();
  ::close(fds[0]);
  EXPECT_EQ(received, frame);
}

// -- Resilient drivers == core drivers ---------------------------------------

TEST(Resilient, RunSweepMatchesCore) {
  core::VrlConfig base;
  std::vector<core::SweepPoint> points(3);
  points[1].nbits = 3;
  points[2].partial_target = 0.9;
  const auto workload = trace::SuiteWorkload("facesim");

  const auto expected = core::RunSweep(base, points, workload, 2);
  const auto inproc = runtime::RunSweep(base, points, workload, 2,
                                        runtime::RuntimeOptions{});
  EXPECT_EQ(inproc, expected);

  runtime::RuntimeOptions workers;
  workers.workers = 2;
  const auto supervised =
      runtime::RunSweep(base, points, workload, 2, workers);
  EXPECT_EQ(supervised, expected);
}

TEST(Resilient, RunSweepResumesFromJournal) {
  core::VrlConfig base;
  std::vector<core::SweepPoint> points(3);
  points[1].subarrays = 4;
  const auto workload = trace::SuiteWorkload("facesim");
  const std::string path = TempPath("sweep_resume.jsonl");
  std::remove(path.c_str());

  runtime::RuntimeOptions options;
  options.journal_path = path;
  const auto first = runtime::RunSweep(base, points, workload, 2, options);

  runtime::RunnerStats stats;
  const auto second =
      runtime::RunSweep(base, points, workload, 2, options, &stats);
  EXPECT_EQ(stats.resumed, 3u);
  EXPECT_EQ(stats.executed, 0u);
  EXPECT_EQ(second, first);

  // A different grid must refuse the same journal (config digest differs).
  points[2].nbits = 4;
  EXPECT_THROW(runtime::RunSweep(base, points, workload, 2, options),
               ConfigError);
}

TEST(Resilient, EvaluationSuiteMatchesCoreIncludingTelemetry) {
  core::VrlConfig config;
  const core::VrlSystem system(config);
  core::ExperimentOptions options;
  options.windows = 2;

  telemetry::Recorder core_sink;
  core::ExperimentOptions core_options = options;
  core_options.telemetry = &core_sink;
  const auto expected = core::RunEvaluationSuite(system, core_options);

  telemetry::Recorder runtime_sink;
  core::ExperimentOptions runtime_options = options;
  runtime_options.telemetry = &runtime_sink;
  const auto actual = runtime::RunEvaluationSuite(system, runtime_options,
                                                  runtime::RuntimeOptions{});
  EXPECT_EQ(actual, expected);

  // The absorbed leg snapshots must reproduce the core drivers' merged
  // metrics exactly (timers excluded — wall clock never crosses the codec).
  std::ostringstream core_metrics;
  runtime::EncodeSnapshot(core_metrics, core_sink.Snapshot());
  std::ostringstream runtime_metrics;
  runtime::EncodeSnapshot(runtime_metrics, runtime_sink.Snapshot());
  EXPECT_EQ(runtime_metrics.str(), core_metrics.str());
}

TEST(Resilient, ResilienceComparisonMatchesCore) {
  core::VrlConfig config;
  config.banks = 1;
  const core::VrlSystem system(config);
  const retention::VrtParams vrt;
  core::ExperimentOptions options;
  options.windows = 4;

  const auto expected =
      core::RunResilienceComparison(system, core::PolicyKind::kVrl, vrt,
                                    options);
  const auto actual = runtime::RunResilienceComparison(
      system, core::PolicyKind::kVrl, vrt, options,
      runtime::RuntimeOptions{});
  EXPECT_EQ(actual.jedec, expected.jedec);
  EXPECT_EQ(actual.plain, expected.plain);
  EXPECT_EQ(actual.adaptive, expected.adaptive);
}

}  // namespace
