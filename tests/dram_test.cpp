#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/error.hpp"
#include "dram/bank.hpp"
#include "dram/controller.hpp"
#include "dram/refresh_policy.hpp"
#include "dram/timing.hpp"
#include "retention/profile.hpp"

namespace vrl::dram {
namespace {

TimingParams FastTiming() {
  TimingParams t;
  t.t_refi = 1000;
  t.t_refw = 64000;
  return t;
}

// ---------------------------------------------------------------------------
// TimingParams
// ---------------------------------------------------------------------------

TEST(Timing, DefaultValidates) { EXPECT_NO_THROW(TimingParams{}.Validate()); }

TEST(Timing, RejectsInconsistent) {
  TimingParams t;
  t.t_ras = 2;
  t.t_rcd = 10;
  EXPECT_THROW(t.Validate(), ConfigError);
  t = TimingParams{};
  t.t_refw = t.t_refi - 1;
  EXPECT_THROW(t.Validate(), ConfigError);
  t = TimingParams{};
  t.t_cas = 0;
  EXPECT_THROW(t.Validate(), ConfigError);
}

TEST(Timing, RejectsRaggedRefreshWindow) {
  // tREFW must divide into whole tREFI ticks: the controller walks the
  // window in tREFI steps and a ragged remainder would silently shortchange
  // the rows due in it.  The message is pinned — callers (and docs) quote it.
  TimingParams t;
  t.t_refi = 1000;
  t.t_refw = 64500;  // 64.5 ticks
  try {
    t.Validate();
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_STREQ(e.what(),
                 "TimingParams: tREFW must be a multiple of tREFI (a ragged "
                 "final refresh window would be silently truncated)");
  }
}

TEST(Timing, DefaultRefreshWindowIsWholeTicks) {
  // The JESD79-3 ratio: 8192 tREFI ticks per tREFW window, exactly.
  const TimingParams t;
  EXPECT_EQ(t.t_refw % t.t_refi, 0u);
  EXPECT_EQ(t.t_refw / t.t_refi, 8192u);
}

TEST(Scheduler, NamesRoundTrip) {
  for (const SchedulerKind kind :
       {SchedulerKind::kFcfs, SchedulerKind::kFrFcfs}) {
    EXPECT_EQ(SchedulerFromName(SchedulerName(kind)), kind);
  }
  EXPECT_EQ(SchedulerFromName("fr-fcfs"), SchedulerKind::kFrFcfs);
  EXPECT_EQ(SchedulerFromName("FR_FCFS"), SchedulerKind::kFrFcfs);
  EXPECT_EQ(SchedulerFromName("fcfs"), SchedulerKind::kFcfs);
  EXPECT_THROW(SchedulerFromName("round-robin"), ConfigError);
}

// ---------------------------------------------------------------------------
// Bank
// ---------------------------------------------------------------------------

TEST(Bank, RowMissCostsActivate) {
  const TimingParams t;
  Bank bank(64, t);
  Request r;
  r.arrival = 0;
  r.row = 3;
  const Cycles done = bank.ServiceRequest(r);
  // Row empty: tRCD + tCAS + burst.
  EXPECT_EQ(done, t.t_rcd + t.t_cas + t.t_bus);
  EXPECT_EQ(bank.stats().row_misses, 1u);
  EXPECT_EQ(bank.stats().row_hits, 0u);
  EXPECT_EQ(*bank.open_row(), 3u);
}

TEST(Bank, RowHitIsCheaper) {
  const TimingParams t;
  Bank bank(64, t);
  Request r;
  r.row = 3;
  const Cycles first = bank.ServiceRequest(r);
  r.arrival = first;
  const Cycles second = bank.ServiceRequest(r);
  EXPECT_EQ(second - first, t.t_cas + t.t_bus);
  EXPECT_EQ(bank.stats().row_hits, 1u);
}

TEST(Bank, RowConflictCostsPrechargeActivate) {
  const TimingParams t;
  Bank bank(64, t);
  Request r;
  r.row = 3;
  const Cycles first = bank.ServiceRequest(r);
  r.row = 5;
  r.arrival = first;
  const Cycles second = bank.ServiceRequest(r);
  // Precharge waits for tRAS of the ACT at 0 if the first access was quick.
  const Cycles pre_start = std::max(first, t.t_ras);
  EXPECT_EQ(second, pre_start + t.t_rp + t.t_rcd + t.t_cas + t.t_bus);
  EXPECT_EQ(bank.stats().row_misses, 2u);
}

TEST(Bank, RequestWaitsForBusyBank) {
  const TimingParams t;
  Bank bank(64, t);
  Request r;
  r.row = 1;
  const Cycles done = bank.ServiceRequest(r);
  Request r2;
  r2.row = 1;
  r2.arrival = 0;  // arrived while busy
  const Cycles done2 = bank.ServiceRequest(r2);
  EXPECT_EQ(done2, done + t.t_cas + t.t_bus);
  // Queueing delay shows up in the latency accounting.
  EXPECT_EQ(bank.stats().total_request_latency, done + done2);
}

TEST(Bank, RefreshClosesOpenRow) {
  const TimingParams t;
  Bank bank(64, t);
  Request r;
  r.row = 7;
  const Cycles done = bank.ServiceRequest(r);
  const RefreshOp op{0, 26, true};
  const Cycles ref_done = bank.ExecuteRefresh(op, done);
  EXPECT_EQ(ref_done, std::max(done, t.t_ras) + t.t_rp + 26);
  EXPECT_FALSE(bank.open_row().has_value());
  EXPECT_EQ(bank.stats().refresh_busy_cycles, 26u);
  EXPECT_EQ(bank.stats().full_refreshes, 1u);
}

TEST(Bank, RefreshFromPrechargedCostsOnlyTrfc) {
  Bank bank(64, TimingParams{});
  const Cycles done = bank.ExecuteRefresh({1, 15, false}, 100);
  EXPECT_EQ(done, 115u);
  EXPECT_EQ(bank.stats().partial_refreshes, 1u);
}

TEST(Bank, CountsReadsAndWrites) {
  Bank bank(64, TimingParams{});
  Request r;
  r.type = RequestType::kWrite;
  bank.ServiceRequest(r);
  r.type = RequestType::kRead;
  r.arrival = 1000;
  bank.ServiceRequest(r);
  EXPECT_EQ(bank.stats().writes, 1u);
  EXPECT_EQ(bank.stats().reads, 1u);
}

TEST(Bank, WriteRecoveryDelaysConflictPrecharge) {
  const TimingParams t;
  Bank bank(64, t);
  Request write;
  write.row = 3;
  write.type = RequestType::kWrite;
  const Cycles write_done = bank.ServiceRequest(write);
  // Immediate conflict: the precharge must wait out tWR after the write.
  Request conflict;
  conflict.row = 5;
  conflict.arrival = write_done;
  const Cycles done = bank.ServiceRequest(conflict);
  EXPECT_EQ(done,
            write_done + t.t_wr + t.t_rp + t.t_rcd + t.t_cas + t.t_bus);
}

TEST(Bank, ReadConflictNeedsNoWriteRecovery) {
  const TimingParams t;
  Bank bank(64, t);
  Request read;
  read.row = 3;
  const Cycles read_done = bank.ServiceRequest(read);
  Request conflict;
  conflict.row = 5;
  conflict.arrival = read_done;
  const Cycles done = bank.ServiceRequest(conflict);
  // No tWR wait — but the precharge still honors tRAS of the ACT at 0.
  const Cycles pre_start = std::max(read_done, t.t_ras);
  EXPECT_EQ(done, pre_start + t.t_rp + t.t_rcd + t.t_cas + t.t_bus);
}

TEST(Bank, TRasKeepsRowOpenBeforeConflict) {
  TimingParams t;
  t.t_ras = 200;  // force the constraint to bind
  Bank bank(64, t);
  Request first;
  first.row = 1;
  const Cycles first_done = bank.ServiceRequest(first);  // ACT at 0
  Request conflict;
  conflict.row = 2;
  conflict.arrival = first_done;
  const Cycles done = bank.ServiceRequest(conflict);
  // Precharge cannot start before ACT + tRAS = 200.
  EXPECT_EQ(done, 200 + t.t_rp + t.t_rcd + t.t_cas + t.t_bus);
}

TEST(Bank, TRasDelaysRefreshPrecharge) {
  TimingParams t;
  t.t_ras = 200;
  Bank bank(64, t);
  Request first;
  first.row = 1;
  const Cycles first_done = bank.ServiceRequest(first);
  const Cycles ref_done = bank.ExecuteRefresh({0, 26, true}, first_done);
  EXPECT_EQ(ref_done, 200 + t.t_rp + 26);
}

TEST(Bank, ClosedPagePrechargesAfterAccess) {
  const TimingParams t;
  Bank bank(64, t, RowBufferPolicy::kClosedPage);
  Request r;
  r.row = 7;
  const Cycles done = bank.ServiceRequest(r);
  EXPECT_FALSE(bank.open_row().has_value());
  // The auto-precharge (waiting out tRAS) occupies the bank beyond the
  // data burst.
  EXPECT_EQ(bank.busy_until(), std::max(done, t.t_ras) + t.t_rp);
}

TEST(Bank, ClosedPageTurnsConflictsIntoEmptyActivations) {
  const TimingParams t;
  Bank open_bank(64, t, RowBufferPolicy::kOpenPage);
  Bank closed_bank(64, t, RowBufferPolicy::kClosedPage);
  // Alternate two rows: open-page pays PRE+ACT each time, closed-page only
  // ACT (the precharge already happened in the shadow of the previous op).
  Cycles open_t = 0;
  Cycles closed_t = 0;
  for (int i = 0; i < 10; ++i) {
    Request r;
    r.row = static_cast<std::size_t>(i % 2);
    // Spaced far apart: the bank is idle when each request arrives.
    r.arrival = static_cast<Cycles>(i + 1) * 100000;
    open_t = open_bank.ServiceRequest(r);
    closed_t = closed_bank.ServiceRequest(r);
  }
  EXPECT_EQ(open_bank.stats().row_misses, 10u);
  EXPECT_EQ(closed_bank.stats().row_misses, 10u);
  // Same misses, but the closed bank never paid an in-line precharge after
  // the first access (arrivals are spaced out), so per-access latency is
  // tRCD+tCAS+tBUS vs tRP+tRCD+tCAS+tBUS.
  EXPECT_LT(closed_bank.stats().total_request_latency,
            open_bank.stats().total_request_latency);
}

// ---------------------------------------------------------------------------
// Subarray-level parallelism
// ---------------------------------------------------------------------------

TEST(BankSalp, RefreshDoesNotBlockOtherSubarrays) {
  const TimingParams t;
  Bank bank(64, t, RowBufferPolicy::kOpenPage, /*subarrays=*/4);
  // Refresh a row in subarray 0 (rows 0..15) with a long tRFC.
  bank.ExecuteRefresh({0, 500, true}, 0);
  // An access to subarray 3 proceeds immediately.
  Request r;
  r.row = 60;
  const Cycles done = bank.ServiceRequest(r);
  EXPECT_EQ(done, t.t_rcd + t.t_cas + t.t_bus);
  // An access to the refreshed subarray waits.
  Request blocked;
  blocked.row = 1;
  const Cycles blocked_done = bank.ServiceRequest(blocked);
  EXPECT_GE(blocked_done, 500u);
}

TEST(BankSalp, EachSubarrayHasItsOwnRowBuffer) {
  const TimingParams t;
  Bank bank(64, t, RowBufferPolicy::kOpenPage, 4);
  Request a;
  a.row = 1;  // subarray 0
  Request b;
  b.row = 20;  // subarray 1
  bank.ServiceRequest(a);
  bank.ServiceRequest(b);
  EXPECT_TRUE(bank.IsRowOpen(1));
  EXPECT_TRUE(bank.IsRowOpen(20));
  EXPECT_FALSE(bank.IsRowOpen(2));
  // Re-access of row 1 is still a hit: opening row 20 did not evict it.
  Request again;
  again.row = 1;
  again.arrival = 10000;
  bank.ServiceRequest(again);
  EXPECT_EQ(bank.stats().row_hits, 1u);
}

TEST(BankSalp, SharedBusSerializesBursts) {
  const TimingParams t;
  Bank bank(64, t, RowBufferPolicy::kOpenPage, 4);
  Request a;
  a.row = 1;  // subarray 0
  Request b;
  b.row = 60;  // subarray 3, same arrival
  const Cycles done_a = bank.ServiceRequest(a);
  const Cycles done_b = bank.ServiceRequest(b);
  // Row cycles overlap, but the two bursts cannot: completions differ by at
  // least the burst length.
  EXPECT_GE(done_b, done_a + t.t_bus);
  // And b finished earlier than a fully serialized bank would allow.
  EXPECT_LT(done_b, done_a + t.t_rcd + t.t_cas + t.t_bus);
}

TEST(BankSalp, SubarrayOfMapsRowsContiguously) {
  Bank bank(64, TimingParams{}, RowBufferPolicy::kOpenPage, 4);
  EXPECT_EQ(bank.subarray_count(), 4u);
  EXPECT_EQ(bank.SubarrayOf(0), 0u);
  EXPECT_EQ(bank.SubarrayOf(15), 0u);
  EXPECT_EQ(bank.SubarrayOf(16), 1u);
  EXPECT_EQ(bank.SubarrayOf(63), 3u);
}

TEST(BankSalp, SingleSubarrayMatchesLegacyBehaviour) {
  const TimingParams t;
  Bank legacy(64, t);
  EXPECT_EQ(legacy.subarray_count(), 1u);
  Request r;
  r.row = 3;
  const Cycles done = legacy.ServiceRequest(r);
  EXPECT_EQ(done, t.t_rcd + t.t_cas + t.t_bus);
  EXPECT_EQ(*legacy.open_row(), 3u);
}

TEST(BankSalp, RejectsBadSubarrayCount) {
  EXPECT_THROW(Bank(64, TimingParams{}, RowBufferPolicy::kOpenPage, 0),
               ConfigError);
  EXPECT_THROW(Bank(64, TimingParams{}, RowBufferPolicy::kOpenPage, 65),
               ConfigError);
}

TEST(Bank, RejectsBadInput) {
  EXPECT_THROW(Bank(0, TimingParams{}), ConfigError);
  Bank bank(4, TimingParams{});
  Request r;
  r.row = 4;
  EXPECT_THROW(bank.ServiceRequest(r), ConfigError);
  EXPECT_THROW(bank.ExecuteRefresh({9, 26, true}, 0), ConfigError);
  EXPECT_THROW(bank.ExecuteRefresh({0, 0, true}, 0), ConfigError);
}

// ---------------------------------------------------------------------------
// Refresh policies
// ---------------------------------------------------------------------------

retention::BinningResult MakeBinning(std::vector<double> retentions) {
  const retention::RetentionProfile profile(std::move(retentions));
  return retention::BinRows(profile, retention::StandardBinPeriods());
}

TEST(JedecPolicy, RefreshesEveryRowOncePerWindow) {
  JedecPolicy policy(16, 1600, 26);
  std::size_t ops = 0;
  for (Cycles t = 0; t < 3200; t += 100) {
    for (const auto& op : policy.CollectDue(t)) {
      EXPECT_TRUE(op.is_full);
      EXPECT_EQ(op.trfc, 26u);
      ++ops;
    }
  }
  // Two windows' worth of refreshes for 16 rows (t=3100 covers the second
  // window's staggered deadlines except the very last row).
  EXPECT_GE(ops, 31u);
  EXPECT_LE(ops, 32u);
}

TEST(RaidrPolicy, WeakRowsRefreshMoreOften) {
  // Row 0: 64 ms bin; row 1: 256 ms bin.
  const auto binning = MakeBinning({0.07, 1.0});
  const auto plan = MakeRefreshPlan(binning, 2.5e-9);
  RaidrPolicy policy(plan, 26);
  std::size_t row0 = 0;
  std::size_t row1 = 0;
  const Cycles period64 = plan.period_cycles[0];
  for (Cycles t = 0; t < 8 * period64; t += period64 / 16) {
    for (const auto& op : policy.CollectDue(t)) {
      (op.row == 0 ? row0 : row1) += 1;
      EXPECT_TRUE(op.is_full);
    }
  }
  EXPECT_GT(row0, 3 * row1);
}

TEST(VrlPolicy, FollowsAlgorithmOne) {
  // Single row with MPRSF 2: pattern partial, partial, full, ...
  retention::BinningResult binning = MakeBinning({1.0});
  auto plan = MakeRefreshPlan(binning, 2.5e-9, {2});
  VrlPolicy policy(plan, 26, 15);
  const Cycles period = plan.period_cycles[0];

  std::vector<bool> fulls;
  for (Cycles t = 0; t < 9 * period; t += period) {
    for (const auto& op : policy.CollectDue(t)) {
      fulls.push_back(op.is_full);
      EXPECT_EQ(op.trfc, op.is_full ? 26u : 15u);
    }
  }
  ASSERT_GE(fulls.size(), 9u);
  // Exactly one full every three refreshes.
  std::size_t full_count = 0;
  for (std::size_t i = 0; i + 2 < fulls.size(); i += 3) {
    full_count += static_cast<std::size_t>(fulls[i]) + fulls[i + 1] + fulls[i + 2];
  }
  EXPECT_EQ(full_count, fulls.size() / 3);
}

TEST(VrlPolicy, ZeroMprsfMeansAllFull) {
  auto plan = MakeRefreshPlan(MakeBinning({1.0}), 2.5e-9, {0});
  VrlPolicy policy(plan, 26, 15);
  const Cycles period = plan.period_cycles[0];
  for (Cycles t = 0; t < 5 * period; t += period) {
    for (const auto& op : policy.CollectDue(t)) {
      EXPECT_TRUE(op.is_full);
    }
  }
}

TEST(VrlPolicy, CounterPhasesAreStaggered) {
  auto plan = MakeRefreshPlan(MakeBinning({1.0, 1.0, 1.0}), 2.5e-9, {2, 2, 2});
  VrlPolicy policy(plan, 26, 15);
  // rcount starts at r % (mprsf+1).
  EXPECT_EQ(policy.RefreshCount(0), 0);
  EXPECT_EQ(policy.RefreshCount(1), 1);
  EXPECT_EQ(policy.RefreshCount(2), 2);
}

TEST(VrlPolicy, RejectsBadConfiguration) {
  auto plan = MakeRefreshPlan(MakeBinning({1.0}), 2.5e-9, {1});
  EXPECT_THROW(VrlPolicy(plan, 26, 26), ConfigError);
  EXPECT_THROW(VrlPolicy(plan, 26, 0), ConfigError);
  auto no_mprsf = MakeRefreshPlan(MakeBinning({1.0}), 2.5e-9);
  EXPECT_THROW(VrlPolicy(no_mprsf, 26, 15), ConfigError);
}

TEST(VrlAccessPolicy, AccessResetsCounter) {
  auto plan = MakeRefreshPlan(MakeBinning({1.0}), 2.5e-9, {2});
  VrlAccessPolicy policy(plan, 26, 15);
  const Cycles period = plan.period_cycles[0];

  // Two partials bring the counter to 2 (next would be full)...
  (void)policy.CollectDue(0);
  (void)policy.CollectDue(period);
  EXPECT_EQ(policy.RefreshCount(0), 2);
  // ...but an access resets it, so the next refresh is partial again.
  policy.OnRowAccess(0);
  EXPECT_EQ(policy.RefreshCount(0), 0);
  const auto ops = policy.CollectDue(2 * period);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_FALSE(ops[0].is_full);
}

TEST(VrlAccessPolicy, RejectsUnknownRow) {
  auto plan = MakeRefreshPlan(MakeBinning({1.0}), 2.5e-9, {1});
  VrlAccessPolicy policy(plan, 26, 15);
  EXPECT_THROW(policy.OnRowAccess(1), ConfigError);
}

TEST(RefreshPolicyContract, CollectDueRejectsDecreasingNow) {
  // Every policy enforces the documented non-decreasing `now` contract.
  const auto plan = MakeRefreshPlan(MakeBinning({1.0, 1.0}), 2.5e-9, {1, 1});
  const auto raidr_plan = MakeRefreshPlan(MakeBinning({1.0, 1.0}), 2.5e-9);
  std::vector<std::unique_ptr<RefreshPolicy>> policies;
  policies.push_back(std::make_unique<JedecPolicy>(2, 1600, 26));
  policies.push_back(std::make_unique<RaidrPolicy>(raidr_plan, 26));
  policies.push_back(std::make_unique<VrlPolicy>(plan, 26, 15));
  policies.push_back(std::make_unique<VrlAccessPolicy>(plan, 26, 15));
  for (auto& policy : policies) {
    (void)policy->CollectDue(100);
    EXPECT_NO_THROW(policy->CollectDue(100)) << policy->Name();
    EXPECT_THROW(policy->CollectDue(99), ConfigError) << policy->Name();
    // The clock did not move backward; later ticks still work.
    EXPECT_NO_THROW(policy->CollectDue(200)) << policy->Name();
  }
}

TEST(MakeRefreshPlanTest, ConvertsPeriodsToCycles) {
  const auto binning = MakeBinning({0.07, 0.26});
  const auto plan = MakeRefreshPlan(binning, 2.5e-9);
  EXPECT_EQ(plan.period_cycles[0], SecondsToCyclesCeil(0.064, 2.5e-9));
  EXPECT_EQ(plan.period_cycles[1], SecondsToCyclesCeil(0.256, 2.5e-9));
  EXPECT_TRUE(plan.mprsf.empty());
}

TEST(MakeRefreshPlanTest, RejectsMismatchedMprsf) {
  const auto binning = MakeBinning({0.07, 0.26});
  EXPECT_THROW(MakeRefreshPlan(binning, 2.5e-9, {1}), ConfigError);
  EXPECT_THROW(MakeRefreshPlan(binning, 0.0), ConfigError);
}

// ---------------------------------------------------------------------------
// MemoryController
// ---------------------------------------------------------------------------

PolicyFactory JedecFactory(std::size_t rows, Cycles window, Cycles trfc) {
  return [=]() { return std::make_unique<JedecPolicy>(rows, window, trfc); };
}

TEST(Controller, RefreshOverheadMatchesHandCount) {
  const TimingParams t = FastTiming();
  const std::size_t rows = 8;
  MemoryController controller(1, rows, t, JedecFactory(rows, t.t_refw, 26));
  const Cycles horizon = 4 * t.t_refw;
  const auto stats = controller.Run({}, horizon);
  // Every row refreshed once per window; deadlines staggered from t=0, so
  // windows [0,4) of deadlines fire within the horizon, plus the boundary
  // tick at exactly `horizon`.
  const std::size_t expected = rows * 4;
  EXPECT_NEAR(static_cast<double>(stats.TotalFullRefreshes()),
              static_cast<double>(expected), 8.0);
  EXPECT_EQ(stats.TotalRefreshBusyCycles(), stats.TotalFullRefreshes() * 26);
}

TEST(Controller, ServicesAllRequests) {
  const TimingParams t = FastTiming();
  MemoryController controller(2, 16, t, JedecFactory(16, t.t_refw, 26));
  std::vector<Request> requests;
  for (int i = 0; i < 100; ++i) {
    Request r;
    r.arrival = static_cast<Cycles>(i * 50);
    r.bank = static_cast<std::size_t>(i % 2);
    r.row = static_cast<std::size_t>(i % 16);
    requests.push_back(r);
  }
  const auto stats = controller.Run(requests, 2 * t.t_refw);
  EXPECT_EQ(stats.TotalReads() + stats.TotalWrites(), 100u);
  EXPECT_GT(stats.AverageRequestLatency(), 0.0);
}

TEST(Controller, RejectsUnsortedRequests) {
  const TimingParams t = FastTiming();
  MemoryController controller(1, 16, t, JedecFactory(16, t.t_refw, 26));
  std::vector<Request> requests(2);
  requests[0].arrival = 100;
  requests[1].arrival = 50;
  EXPECT_THROW(controller.Run(requests, 1000), ConfigError);
}

TEST(Controller, RejectsOutOfRangeBank) {
  const TimingParams t = FastTiming();
  MemoryController controller(1, 16, t, JedecFactory(16, t.t_refw, 26));
  std::vector<Request> requests(1);
  requests[0].bank = 5;
  EXPECT_THROW(controller.Run(requests, 1000), ConfigError);
}

TEST(Controller, RejectsBadFactory) {
  const TimingParams t = FastTiming();
  EXPECT_THROW(MemoryController(1, 16, t, []() {
                 return std::unique_ptr<RefreshPolicy>{};
               }),
               ConfigError);
  // Policy row count must match the bank.
  EXPECT_THROW(MemoryController(1, 16, t, JedecFactory(8, t.t_refw, 26)),
               ConfigError);
}

TEST(ControllerStats, AggregatesAcrossBanks) {
  SimulationStats stats;
  stats.per_bank.resize(2);
  stats.per_bank[0].full_refreshes = 3;
  stats.per_bank[0].refresh_busy_cycles = 78;
  stats.per_bank[1].partial_refreshes = 2;
  stats.per_bank[1].refresh_busy_cycles = 30;
  EXPECT_EQ(stats.TotalFullRefreshes(), 3u);
  EXPECT_EQ(stats.TotalPartialRefreshes(), 2u);
  EXPECT_EQ(stats.TotalRefreshBusyCycles(), 108u);
  EXPECT_DOUBLE_EQ(stats.RefreshOverheadPerBank(), 54.0);
}

}  // namespace
}  // namespace vrl::dram
