// Tests for the shared report writer (bench/reporting.hpp): CSV quoting,
// the uniform CLI flag parser, and the policy-name resolver the reporting
// binaries feed their positional arguments through.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "bench/reporting.hpp"
#include "common/error.hpp"
#include "core/vrl_system.hpp"

namespace vrl::bench {
namespace {

// argv helper: ParseReportArgs takes (argc, char**) like main.
ReportOptions Parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("test_binary"));
  for (std::string& arg : args) {
    argv.push_back(arg.data());
  }
  return ParseReportArgs(static_cast<int>(argv.size()), argv.data());
}

// -- CSV escaping -------------------------------------------------------------

TEST(ReportCsv, PlainCellsPassThroughUnquoted) {
  Report report("plain");
  TextTable& table = report.AddTable("t", {"a", "b"});
  table.AddRow({"x", "1.5"});
  std::ostringstream os;
  report.WriteCsv(os);
  EXPECT_EQ(os.str(), "# plain.t\na,b\nx,1.5\n");
}

TEST(ReportCsv, CommaQuoteAndNewlineCellsAreQuoted) {
  Report report("r");
  TextTable& table = report.AddTable("t", {"kind", "cell"});
  table.AddRow({"comma", "a,b"});
  table.AddRow({"quote", "say \"hi\""});
  table.AddRow({"newline", "line1\nline2"});
  table.AddRow({"all", "a,\"b\"\nc"});
  std::ostringstream os;
  report.WriteCsv(os);
  EXPECT_EQ(os.str(),
            "# r.t\n"
            "kind,cell\n"
            "comma,\"a,b\"\n"
            "quote,\"say \"\"hi\"\"\"\n"
            "newline,\"line1\nline2\"\n"
            "all,\"a,\"\"b\"\"\nc\"\n");
}

TEST(ReportCsv, HeadersAreEscapedToo) {
  Report report("r");
  report.AddTable("t", {"plain", "needs,quoting"});
  std::ostringstream os;
  report.WriteCsv(os);
  EXPECT_EQ(os.str(), "# r.t\nplain,\"needs,quoting\"\n");
}

TEST(ReportCsv, MultipleTablesGetSectionsSeparatedByBlankLine) {
  Report report("multi");
  report.AddTable("first", {"a"}).AddRow({"1"});
  report.AddTable("second", {"b"}).AddRow({"2"});
  std::ostringstream os;
  report.WriteCsv(os);
  EXPECT_EQ(os.str(),
            "# multi.first\na\n1\n"
            "\n"
            "# multi.second\nb\n2\n");
}

// The three renderings promise to agree cell-for-cell; spot-check that a
// hostile cell survives the JSON path as well (JsonEscape, not CSV rules).
TEST(ReportCsv, JsonRenderingEscapesTheSameCells) {
  Report report("r");
  report.AddTable("t", {"cell"}).AddRow({"a,\"b\"\nc"});
  std::ostringstream os;
  report.WriteJson(os);
  EXPECT_NE(os.str().find("\"cell\":\"a,\\\"b\\\"\\nc\""), std::string::npos)
      << os.str();
}

// -- ParseReportArgs ----------------------------------------------------------

TEST(ParseReportArgs, DefaultsAreEmpty) {
  const ReportOptions options = Parse({});
  EXPECT_TRUE(options.json_path.empty());
  EXPECT_TRUE(options.csv_path.empty());
  EXPECT_TRUE(options.trace_path.empty());
  EXPECT_FALSE(options.profile);
  EXPECT_TRUE(options.positional.empty());
}

TEST(ParseReportArgs, ParsesAllFlagsAndKeepsPositionalOrder) {
  const ReportOptions options =
      Parse({"VRL", "--json", "out.json", "--trace-out", "trace.jsonl",
             "--profile", "--csv", "-", "extra"});
  EXPECT_EQ(options.json_path, "out.json");
  EXPECT_EQ(options.csv_path, "-");
  EXPECT_EQ(options.trace_path, "trace.jsonl");
  EXPECT_TRUE(options.profile);
  EXPECT_EQ(options.positional, (std::vector<std::string>{"VRL", "extra"}));
}

TEST(ParseReportArgs, MissingPathThrows) {
  EXPECT_THROW(Parse({"--json"}), ConfigError);
  EXPECT_THROW(Parse({"--csv"}), ConfigError);
  EXPECT_THROW(Parse({"pos", "--trace-out"}), ConfigError);
}

TEST(ParseReportArgs, FlagValueMayLookLikeAFlag) {
  // `--json --profile` consumes "--profile" as the path — documented
  // greedy behaviour, pinned so a refactor doesn't silently change it.
  const ReportOptions options = Parse({"--json", "--profile"});
  EXPECT_EQ(options.json_path, "--profile");
  EXPECT_FALSE(options.profile);
}

TEST(ParseReportArgs, ServePortArgumentIsOptional) {
  const ReportOptions bare = Parse({"--serve"});
  EXPECT_TRUE(bare.serve);
  EXPECT_EQ(bare.serve_port, 0);  // ephemeral

  const ReportOptions with_port = Parse({"--serve", "8080", "VRL"});
  EXPECT_TRUE(with_port.serve);
  EXPECT_EQ(with_port.serve_port, 8080);
  EXPECT_EQ(with_port.positional, (std::vector<std::string>{"VRL"}));

  // A non-numeric follower is a positional, not a port.
  const ReportOptions no_port = Parse({"--serve", "VRL"});
  EXPECT_TRUE(no_port.serve);
  EXPECT_EQ(no_port.serve_port, 0);
  EXPECT_EQ(no_port.positional, (std::vector<std::string>{"VRL"}));
}

TEST(ParseReportArgs, WatchdogTakesARulesPathAndRequiresIt) {
  const ReportOptions options = Parse({"--watchdog", "rules.json"});
  EXPECT_EQ(options.watchdog_path, "rules.json");
  EXPECT_FALSE(options.serve);  // --watchdog alone does not start a server
  EXPECT_THROW(Parse({"--watchdog"}), ConfigError);
}

TEST(ParseReportArgs, ResilienceFlagsParseAndValidate) {
  const ReportOptions defaults = Parse({});
  EXPECT_TRUE(defaults.resume_path.empty());
  EXPECT_EQ(defaults.workers, 0u);
  EXPECT_EQ(defaults.leg_timeout_s, 120.0);
  EXPECT_EQ(defaults.max_retries, 3u);

  const ReportOptions options =
      Parse({"--resume", "run.journal", "--workers", "4", "--leg-timeout",
             "2.5", "--max-retries", "7", "VRL"});
  EXPECT_EQ(options.resume_path, "run.journal");
  EXPECT_EQ(options.workers, 4u);
  EXPECT_EQ(options.leg_timeout_s, 2.5);
  EXPECT_EQ(options.max_retries, 7u);
  EXPECT_EQ(options.positional, (std::vector<std::string>{"VRL"}));

  EXPECT_THROW(Parse({"--resume"}), ConfigError);
  EXPECT_THROW(Parse({"--workers", "two"}), ConfigError);
  EXPECT_THROW(Parse({"--max-retries", "-1"}), ConfigError);
  EXPECT_THROW(Parse({"--leg-timeout", "0"}), ConfigError);
  EXPECT_THROW(Parse({"--leg-timeout", "fast"}), ConfigError);
}

TEST(ParseReportArgs, MakeRuntimeOptionsMapsTheResilienceFlags) {
  const runtime::RuntimeOptions runtime = MakeRuntimeOptions(
      Parse({"--resume", "j.jsonl", "--workers", "3", "--leg-timeout", "9",
             "--max-retries", "1"}));
  EXPECT_EQ(runtime.journal_path, "j.jsonl");
  EXPECT_EQ(runtime.workers, 3u);
  EXPECT_EQ(runtime.leg_timeout_s, 9.0);
  EXPECT_EQ(runtime.max_retries, 1u);
}

// -- Emit ---------------------------------------------------------------------

TEST(ReportEmit, UnopenablePathThrows) {
  Report report("r");
  report.AddTable("t", {"a"}).AddRow({"1"});
  ReportOptions options;
  options.json_path = "/nonexistent-dir-for-test/out.json";
  std::ostringstream text;
  EXPECT_THROW(report.Emit(options, text), ConfigError);
}

TEST(ReportEmit, StdoutJsonReplacesTextRendering) {
  Report report("r");
  report.AddTable("t", {"a"}).AddRow({"1"});
  ReportOptions options;
  options.json_path = "-";
  std::ostringstream text;
  report.Emit(options, text);
  EXPECT_EQ(text.str().front(), '{') << text.str();
  EXPECT_EQ(text.str().find("-- t --"), std::string::npos);
}

// -- PolicyFromName -----------------------------------------------------------

TEST(PolicyFromName, CanonicalizesCaseAndSeparators) {
  EXPECT_EQ(core::PolicyFromName("JEDEC"), core::PolicyKind::kJedec);
  EXPECT_EQ(core::PolicyFromName("jedec"), core::PolicyKind::kJedec);
  EXPECT_EQ(core::PolicyFromName("RAIDR"), core::PolicyKind::kRaidr);
  EXPECT_EQ(core::PolicyFromName("VRL"), core::PolicyKind::kVrl);
  EXPECT_EQ(core::PolicyFromName("VRL-Access"), core::PolicyKind::kVrlAccess);
  EXPECT_EQ(core::PolicyFromName("vrl_access"), core::PolicyKind::kVrlAccess);
  EXPECT_EQ(core::PolicyFromName("VrlAccess"), core::PolicyKind::kVrlAccess);
}

TEST(PolicyFromName, UnknownAndEmptyNamesThrow) {
  EXPECT_THROW(core::PolicyFromName("DDR5"), ConfigError);
  EXPECT_THROW(core::PolicyFromName(""), ConfigError);
  // Separator-only input canonicalizes to empty, not to a policy.
  EXPECT_THROW(core::PolicyFromName("--__"), ConfigError);
}

}  // namespace
}  // namespace vrl::bench
