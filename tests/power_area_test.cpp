#include <gtest/gtest.h>

#include "area/area_model.hpp"
#include "common/error.hpp"
#include "power/idd.hpp"
#include "power/power_model.hpp"

namespace vrl {
namespace {

// ---------------------------------------------------------------------------
// PowerModel
// ---------------------------------------------------------------------------

dram::SimulationStats MakeStats() {
  dram::SimulationStats stats;
  stats.per_bank.resize(1);
  auto& b = stats.per_bank[0];
  b.activations = 100;
  b.reads = 150;
  b.writes = 50;
  b.full_refreshes = 10;
  b.partial_refreshes = 20;
  b.refresh_busy_cycles = 10 * 26 + 20 * 15;
  stats.simulated_cycles = 1'000'000;
  return stats;
}

TEST(PowerModel, PartialRefreshCostsLessThanFull) {
  const power::PowerModel model(power::EnergyParams{}, 2.5e-9);
  EXPECT_LT(model.RefreshOpEnergyPj(15), model.RefreshOpEnergyPj(26));
}

TEST(PowerModel, RefreshOpEnergyHasFixedFloor) {
  const power::EnergyParams params;
  const power::PowerModel model(params, 2.5e-9);
  EXPECT_GT(model.RefreshOpEnergyPj(1), params.e_refresh_fixed_pj);
}

TEST(PowerModel, BreakdownAddsUp) {
  const power::PowerModel model(power::EnergyParams{}, 2.5e-9);
  const auto e = model.Compute(MakeStats());
  EXPECT_GT(e.activate_nj, 0.0);
  EXPECT_GT(e.read_write_nj, 0.0);
  EXPECT_GT(e.refresh_nj, 0.0);
  EXPECT_GT(e.background_nj, 0.0);
  EXPECT_NEAR(e.Total(), e.activate_nj + e.read_write_nj + e.refresh_nj +
                             e.background_nj,
              1e-12);
}

TEST(PowerModel, RefreshEnergyMatchesHandComputation) {
  power::EnergyParams params;
  const power::PowerModel model(params, 2.5e-9);
  const auto stats = MakeStats();
  const auto e = model.Compute(stats);
  const double busy_s = 2.5e-9 * static_cast<double>(560);
  const double expected_nj =
      30.0 * params.e_refresh_fixed_pj * 1e-3 +
      params.p_refresh_active_mw * busy_s * 1e6;
  EXPECT_NEAR(e.refresh_nj, expected_nj, 1e-9);
}

TEST(PowerModel, FewerRefreshCyclesMeansLessRefreshEnergy) {
  const power::PowerModel model(power::EnergyParams{}, 2.5e-9);
  auto stats = MakeStats();
  const double base = model.Compute(stats).refresh_nj;
  stats.per_bank[0].refresh_busy_cycles /= 2;
  EXPECT_LT(model.Compute(stats).refresh_nj, base);
}

TEST(PowerModel, RejectsBadInputs) {
  EXPECT_THROW(power::PowerModel(power::EnergyParams{}, 0.0), ConfigError);
  power::EnergyParams params;
  params.e_activate_pj = -1.0;
  EXPECT_THROW(power::PowerModel(params, 2.5e-9), ConfigError);
}

TEST(PowerModel, ZeroSpanHasZeroPower) {
  const power::PowerModel model(power::EnergyParams{}, 2.5e-9);
  dram::SimulationStats stats;
  stats.per_bank.resize(1);
  const auto e = model.Compute(stats);
  EXPECT_DOUBLE_EQ(e.refresh_power_mw, 0.0);
}

// ---------------------------------------------------------------------------
// IDD-derived energy parameters
// ---------------------------------------------------------------------------

TEST(IddDerivation, ProducesValidEnergyParams) {
  const auto params =
      power::FromIdd(power::IddCurrents{}, dram::TimingParams{}, 2.5e-9);
  EXPECT_NO_THROW(params.Validate());
  EXPECT_GT(params.e_activate_pj, 0.0);
  EXPECT_GT(params.e_read_pj, 0.0);
  EXPECT_GT(params.e_write_pj, 0.0);
  EXPECT_GT(params.p_refresh_active_mw, 0.0);
  EXPECT_GT(params.p_background_mw, 0.0);
}

TEST(IddDerivation, RefreshFixedPartIsTheInternalActivation) {
  const auto params =
      power::FromIdd(power::IddCurrents{}, dram::TimingParams{}, 2.5e-9);
  EXPECT_DOUBLE_EQ(params.e_refresh_fixed_pj, params.e_activate_pj);
}

TEST(IddDerivation, WriteBurstCostsMoreThanRead) {
  // IDD4W > IDD4R in the default datasheet numbers.
  const auto params =
      power::FromIdd(power::IddCurrents{}, dram::TimingParams{}, 2.5e-9);
  EXPECT_GT(params.e_write_pj, params.e_read_pj);
}

TEST(IddDerivation, HigherRefreshCurrentMeansMoreActivePower) {
  power::IddCurrents hot;
  hot.idd5b_ma = 250.0;
  const auto base =
      power::FromIdd(power::IddCurrents{}, dram::TimingParams{}, 2.5e-9);
  const auto hot_params = power::FromIdd(hot, dram::TimingParams{}, 2.5e-9);
  EXPECT_GT(hot_params.p_refresh_active_mw, base.p_refresh_active_mw);
}

TEST(IddDerivation, NormalizedVrlSavingsAreParameterRobust) {
  // The headline normalized results should not hinge on the exact energy
  // calibration: refresh energy with VRL vs RAIDR shifts by < 3% between
  // the default parameters and the IDD-derived ones.
  const auto make_stats = [](Cycles busy, std::size_t fulls,
                             std::size_t partials) {
    dram::SimulationStats stats;
    stats.per_bank.resize(1);
    stats.per_bank[0].full_refreshes = fulls;
    stats.per_bank[0].partial_refreshes = partials;
    stats.per_bank[0].refresh_busy_cycles = busy;
    stats.simulated_cycles = 25'600'000;
    return stats;
  };
  const auto raidr = make_stats(17099 * 26, 17099, 0);
  const auto vrl = make_stats(7258 * 26 + 9841 * 15, 7258, 9841);

  const power::PowerModel defaults(power::EnergyParams{}, 2.5e-9);
  const auto idd_params =
      power::FromIdd(power::IddCurrents{}, dram::TimingParams{}, 2.5e-9);
  const power::PowerModel from_idd(idd_params, 2.5e-9);

  const double norm_default = defaults.Compute(vrl).refresh_nj /
                              defaults.Compute(raidr).refresh_nj;
  const double norm_idd =
      from_idd.Compute(vrl).refresh_nj / from_idd.Compute(raidr).refresh_nj;
  EXPECT_NEAR(norm_default, norm_idd, 0.03);
}

TEST(IddDerivation, RejectsBadCurrents) {
  power::IddCurrents bad;
  bad.idd0_ma = 10.0;  // below standby
  EXPECT_THROW(power::FromIdd(bad, dram::TimingParams{}, 2.5e-9),
               ConfigError);
  power::IddCurrents zero_banks;
  zero_banks.banks = 0;
  EXPECT_THROW(power::FromIdd(zero_banks, dram::TimingParams{}, 2.5e-9),
               ConfigError);
  EXPECT_THROW(power::FromIdd(power::IddCurrents{}, dram::TimingParams{}, 0.0),
               ConfigError);
}

// ---------------------------------------------------------------------------
// AreaModel (Table 2)
// ---------------------------------------------------------------------------

TEST(AreaModel, ReproducesTable2LogicAreas) {
  const area::AreaModel model;
  EXPECT_NEAR(model.LogicAreaUm2(2), 105.0, 2.0);
  EXPECT_NEAR(model.LogicAreaUm2(3), 152.0, 2.0);
  EXPECT_NEAR(model.LogicAreaUm2(4), 200.0, 2.0);
}

TEST(AreaModel, ReproducesTable2Percentages) {
  const area::AreaModel model;
  EXPECT_NEAR(model.OverheadFraction(2, 8192, 32), 0.0097, 0.0004);
  EXPECT_NEAR(model.OverheadFraction(3, 8192, 32), 0.014, 0.0006);
  EXPECT_NEAR(model.OverheadFraction(4, 8192, 32), 0.0185, 0.0008);
}

TEST(AreaModel, OverheadStaysBelowTwoPercent) {
  // The paper's headline: within 1-2% of the bank area.
  const area::AreaModel model;
  for (std::size_t nbits = 2; nbits <= 4; ++nbits) {
    EXPECT_LT(model.OverheadFraction(nbits, 8192, 32), 0.02);
  }
}

TEST(AreaModel, LogicAreaIsAffineInNbits) {
  const area::AreaModel model;
  const double d1 = model.LogicAreaUm2(3) - model.LogicAreaUm2(2);
  const double d2 = model.LogicAreaUm2(4) - model.LogicAreaUm2(3);
  EXPECT_NEAR(d1, d2, 1e-9);
}

TEST(AreaModel, BiggerBankSmallerOverhead) {
  const area::AreaModel model;
  EXPECT_GT(model.OverheadFraction(2, 2048, 32),
            model.OverheadFraction(2, 16384, 128));
}

TEST(AreaModel, RejectsBadInputs) {
  const area::AreaModel model;
  EXPECT_THROW(model.LogicAreaUm2(0), ConfigError);
  EXPECT_THROW(model.BankAreaUm2(0, 32), ConfigError);
  area::AreaParams params;
  params.feature_nm = -1.0;
  EXPECT_THROW(area::AreaModel{params}, ConfigError);
}

}  // namespace
}  // namespace vrl
