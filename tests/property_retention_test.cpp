// Property-based tests of the retention stack: distribution calibration
// across parameter sets, leakage-model algebra, MPRSF monotonicity sweeps,
// temperature and VRT invariants.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.hpp"
#include "model/refresh_model.hpp"
#include "retention/distribution.hpp"
#include "retention/leakage.hpp"
#include "retention/mprsf.hpp"
#include "retention/profile.hpp"
#include "retention/temperature.hpp"
#include "retention/vrt.hpp"

namespace vrl::retention {
namespace {

// ---------------------------------------------------------------------------
// Distribution: empirical vs analytic CDF across parameter sets
// ---------------------------------------------------------------------------

class DistributionProperty
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {
 protected:
  RetentionDistribution Dist() const {
    const auto [mu, sigma, weak] = GetParam();
    RetentionDistributionParams params;
    params.lognormal_mu = mu;
    params.lognormal_sigma = sigma;
    params.weak_fraction = weak;
    return RetentionDistribution(params);
  }
};

TEST_P(DistributionProperty, EmpiricalCdfTracksAnalytic) {
  const auto dist = Dist();
  Rng rng(17);
  const int n = 60000;
  for (const double t : {0.1, 0.256, 0.7, 2.0}) {
    int below = 0;
    Rng sample_rng = rng.Fork(static_cast<std::uint64_t>(t * 1000));
    for (int i = 0; i < n; ++i) {
      below += dist.SampleCellRetention(sample_rng) < t ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(below) / n, dist.CellCdf(t),
                4.0 * std::sqrt(0.25 / n) + 1e-3)
        << "at t=" << t;
  }
}

TEST_P(DistributionProperty, CdfIsMonotone) {
  const auto dist = Dist();
  double prev = -1.0;
  for (double t = 0.01; t < 50.0; t *= 1.4) {
    const double c = dist.CellCdf(t);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST_P(DistributionProperty, RowMinIsStochasticallySmaller) {
  const auto dist = Dist();
  Rng rng(3);
  int row_smaller = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const double cell = dist.SampleCellRetention(rng);
    const double row = dist.SampleRowRetention(rng, 16);
    row_smaller += row < cell ? 1 : 0;
  }
  // P(min of 16 < one draw) should be well above 1/2.
  EXPECT_GT(row_smaller, trials * 2 / 3);
}

INSTANTIATE_TEST_SUITE_P(
    ParamSets, DistributionProperty,
    ::testing::Values(std::make_tuple(std::log(1.8), 0.645, 1.22e-3),
                      std::make_tuple(std::log(1.0), 0.5, 5e-3),
                      std::make_tuple(std::log(3.0), 0.8, 1e-4),
                      std::make_tuple(std::log(1.8), 0.645, 0.0)));

// ---------------------------------------------------------------------------
// Leakage algebra
// ---------------------------------------------------------------------------

class LeakageProperty : public ::testing::TestWithParam<double> {};

TEST_P(LeakageProperty, DecayComposes) {
  // decay(t1 + t2) == decay(t1) then decay(t2)  (exponential semigroup)
  const LeakageModel leak(0.9995, 0.579);
  const double retention = GetParam();
  const double f0 = 0.95;
  const double split = leak.FractionAfter(
      leak.FractionAfter(f0, 0.03, retention), 0.05, retention);
  const double whole = leak.FractionAfter(f0, 0.08, retention);
  EXPECT_NEAR(split, whole, 1e-12);
}

TEST_P(LeakageProperty, RetentionDefinitionHolds) {
  const LeakageModel leak(0.9995, 0.579);
  const double retention = GetParam();
  EXPECT_NEAR(leak.FractionAfter(0.9995, retention, retention), 0.579, 1e-9);
  EXPECT_NEAR(leak.TimeToReach(0.9995, 0.579, retention), retention, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Retentions, LeakageProperty,
                         ::testing::Values(0.07, 0.128, 0.5, 2.0, 10.0));

// ---------------------------------------------------------------------------
// MPRSF monotonicity across the (retention, period) plane
// ---------------------------------------------------------------------------

class MprsfPlane : public ::testing::TestWithParam<double> {
 protected:
  MprsfPlane()
      : model_(TechnologyParams{}),
        calc_(model_, model_.PartialRefreshTimings().tau_post_s) {}
  model::RefreshModel model_;
  MprsfCalculator calc_;
};

TEST_P(MprsfPlane, MonotoneInRetention) {
  const double period = GetParam();
  std::size_t prev = 0;
  for (double ratio = 1.02; ratio < 40.0; ratio *= 1.6) {
    const std::size_t m = calc_.ComputeMprsf(period * ratio, period, 8);
    EXPECT_GE(m, prev) << "period=" << period << " ratio=" << ratio;
    prev = m;
  }
}

TEST_P(MprsfPlane, LongerPeriodNeverHelps) {
  // For the same absolute retention, refreshing less often cannot increase
  // the number of sustainable partials.
  const double period = GetParam();
  const double retention = 8.0 * period;
  const std::size_t fast = calc_.ComputeMprsf(retention, period, 8);
  const std::size_t slow = calc_.ComputeMprsf(retention, 2.0 * period, 8);
  EXPECT_GE(fast, slow);
}

TEST_P(MprsfPlane, CapIsRespected) {
  const double period = GetParam();
  for (std::size_t cap = 0; cap <= 4; ++cap) {
    EXPECT_LE(calc_.ComputeMprsf(50.0 * period, period, cap), cap);
  }
}

INSTANTIATE_TEST_SUITE_P(Periods, MprsfPlane,
                         ::testing::Values(0.064, 0.128, 0.192, 0.256));

// ---------------------------------------------------------------------------
// Temperature model
// ---------------------------------------------------------------------------

class TemperatureProperty : public ::testing::TestWithParam<double> {};

TEST_P(TemperatureProperty, ScaleHalvesPerStep) {
  TemperatureModel model;
  const double celsius = GetParam();
  const double scale = model.RetentionScale(celsius);
  const double hotter = model.RetentionScale(celsius + model.halving_celsius);
  EXPECT_NEAR(hotter, 0.5 * scale, 1e-12);
}

TEST_P(TemperatureProperty, MaxSafeCelsiusInvertsScale) {
  TemperatureModel model;
  const double celsius = GetParam();
  if (celsius < model.profiling_celsius) {
    return;  // guardbands below 1 are rejected by contract
  }
  const double guard = 1.0 / model.RetentionScale(celsius);
  EXPECT_NEAR(model.MaxSafeCelsius(guard), celsius, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Temperatures, TemperatureProperty,
                         ::testing::Values(25.0, 45.0, 55.0, 70.0, 85.0));

TEST(TemperatureModelTest, ProfilingPointIsUnity) {
  TemperatureModel model;
  EXPECT_DOUBLE_EQ(model.RetentionScale(model.profiling_celsius), 1.0);
  EXPECT_NEAR(model.MaxSafeCelsius(1.0), model.profiling_celsius, 1e-12);
}

TEST(TemperatureModelTest, RejectsBadInputs) {
  TemperatureModel model;
  model.halving_celsius = 0.0;
  EXPECT_THROW(model.RetentionScale(50.0), ConfigError);
  model = TemperatureModel{};
  EXPECT_THROW(model.MaxSafeCelsius(0.5), ConfigError);
}

// ---------------------------------------------------------------------------
// VRT model
// ---------------------------------------------------------------------------

class VrtProperty : public ::testing::TestWithParam<double> {};

TEST_P(VrtProperty, WorstCaseOnlyDegradesVrtRows) {
  VrtParams params;
  params.row_fraction = GetParam();
  Rng rng(5);
  const RetentionProfile profiled(
      std::vector<double>(200, 1.0));
  const auto vrt_rows = SampleVrtRows(params, 200, rng);
  const auto runtime = WorstCaseRuntimeProfile(profiled, vrt_rows, params);
  for (std::size_t r = 0; r < 200; ++r) {
    if (vrt_rows[r]) {
      EXPECT_NEAR(runtime.RowRetention(r), params.low_ratio, 1e-12);
    } else {
      EXPECT_DOUBLE_EQ(runtime.RowRetention(r), 1.0);
    }
  }
}

TEST_P(VrtProperty, SampledRuntimeIsBoundedByWorstCase) {
  VrtParams params;
  params.row_fraction = GetParam();
  Rng rng(6);
  const RetentionProfile profiled(std::vector<double>(100, 2.0));
  const auto vrt_rows = SampleVrtRows(params, 100, rng);
  const auto worst = WorstCaseRuntimeProfile(profiled, vrt_rows, params);
  const auto sampled = SampleRuntimeProfile(profiled, vrt_rows, params, rng);
  for (std::size_t r = 0; r < 100; ++r) {
    EXPECT_GE(sampled.RowRetention(r), worst.RowRetention(r) - 1e-12);
    EXPECT_LE(sampled.RowRetention(r), profiled.RowRetention(r) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(VrtFractions, VrtProperty,
                         ::testing::Values(0.0, 0.02, 0.2, 1.0));

TEST(VrtParamsTest, RejectsBadValues) {
  VrtParams params;
  params.low_ratio = 0.0;
  EXPECT_THROW(params.Validate(), ConfigError);
  params = VrtParams{};
  params.row_fraction = 1.5;
  EXPECT_THROW(params.Validate(), ConfigError);
  params = VrtParams{};
  params.low_state_prob = -0.1;
  EXPECT_THROW(params.Validate(), ConfigError);
}

TEST(VrtSampling, FractionMatchesExpectation) {
  VrtParams params;
  params.row_fraction = 0.1;
  Rng rng(9);
  const auto rows = SampleVrtRows(params, 50000, rng);
  std::size_t count = 0;
  for (const bool v : rows) {
    count += v ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(count) / 50000.0, 0.1, 0.01);
}

}  // namespace
}  // namespace vrl::retention
