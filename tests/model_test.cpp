#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/technology.hpp"
#include "model/equalization.hpp"
#include "model/postsensing.hpp"
#include "model/presensing.hpp"
#include "model/refresh_model.hpp"
#include "model/single_cell.hpp"

namespace vrl::model {
namespace {

TechnologyParams DefaultTech() { return TechnologyParams{}; }

// ---------------------------------------------------------------------------
// EqualizationModel (§2.1, Eq. 1-2)
// ---------------------------------------------------------------------------

TEST(Equalization, PhaseOneTimeMatchesEq1) {
  const TechnologyParams tech = DefaultTech();
  const EqualizationModel eq(tech);
  // t_o = Cbl * Vtn / Idsat, Idsat = beta/2 * (Vdd - Veq - Vtn)^2.
  const double beta = tech.BetaN(tech.wl_eq);
  const double ov = tech.vdd - tech.Veq() - tech.vt_n;
  const double idsat = 0.5 * beta * ov * ov;
  EXPECT_NEAR(eq.PhaseOneTime(BitlineSide::kHigh),
              tech.Cbl() * tech.vt_n / idsat, 1e-15);
  EXPECT_DOUBLE_EQ(eq.PhaseOneTime(BitlineSide::kLow), 0.0);
}

TEST(Equalization, HighSideStartsAtVddAndDropsLinearlyInPhase1) {
  const TechnologyParams tech = DefaultTech();
  const EqualizationModel eq(tech);
  EXPECT_DOUBLE_EQ(eq.VoltageAt(BitlineSide::kHigh, 0.0), tech.vdd);
  const double to = eq.PhaseOneTime(BitlineSide::kHigh);
  // Linear in phase 1: half of t_o gives half of the Vtn drop.
  EXPECT_NEAR(eq.VoltageAt(BitlineSide::kHigh, 0.5 * to),
              tech.vdd - 0.5 * tech.vt_n, 1e-9);
  // At t_o the bitline has dropped exactly by Vtn.
  EXPECT_NEAR(eq.VoltageAt(BitlineSide::kHigh, to), tech.vdd - tech.vt_n,
              1e-9);
}

TEST(Equalization, BothSidesConvergeToVeq) {
  const TechnologyParams tech = DefaultTech();
  const EqualizationModel eq(tech);
  const double t_long = 50e-9;
  EXPECT_NEAR(eq.VoltageAt(BitlineSide::kHigh, t_long), tech.Veq(), 1e-3);
  EXPECT_NEAR(eq.VoltageAt(BitlineSide::kLow, t_long), tech.Veq(), 1e-3);
}

TEST(Equalization, HighSideIsMonotonicallyDecreasing) {
  const EqualizationModel eq(DefaultTech());
  double prev = eq.VoltageAt(BitlineSide::kHigh, 0.0);
  for (int i = 1; i <= 100; ++i) {
    const double v = eq.VoltageAt(BitlineSide::kHigh, i * 0.05e-9);
    EXPECT_LE(v, prev + 1e-12);
    prev = v;
  }
}

TEST(Equalization, LowSideRisesFasterThanHighSideFalls) {
  // The paper's Fig. 5: the complementary bitline (linear region all the
  // way) settles earlier than the Vdd bitline (saturation phase first).
  const EqualizationModel eq(DefaultTech());
  EXPECT_LT(eq.SettleTime(BitlineSide::kLow, 0.01),
            eq.SettleTime(BitlineSide::kHigh, 0.01));
}

TEST(Equalization, SettleTimeShrinksWithLooserTolerance) {
  const EqualizationModel eq(DefaultTech());
  EXPECT_LT(eq.SettleTime(BitlineSide::kHigh, 0.05),
            eq.SettleTime(BitlineSide::kHigh, 0.005));
}

TEST(Equalization, DelayGrowsWithBitlineLength) {
  const TechnologyParams small = DefaultTech().WithGeometry(2048, 32);
  const TechnologyParams large = DefaultTech().WithGeometry(16384, 32);
  EXPECT_LT(EqualizationModel(small).EqualizationDelay(),
            EqualizationModel(large).EqualizationDelay());
}

TEST(Equalization, RejectsNonConductingDevice) {
  TechnologyParams tech = DefaultTech();
  tech.vt_n = 0.65;  // above Vdd/2: M2/M3 can never drive the bitline to Veq
  tech.vdd = 1.2;
  EXPECT_THROW(EqualizationModel{tech}, ConfigError);
}

// ---------------------------------------------------------------------------
// PreSensingModel (§2.2, Eq. 3-8)
// ---------------------------------------------------------------------------

TEST(PreSensing, CouplingCoefficientsMatchEq7) {
  const TechnologyParams tech = DefaultTech();
  const PreSensingModel pre(tech);
  const double denom =
      tech.cs + tech.Cbl() + 2.0 * tech.Cbb() + tech.Cbw();
  EXPECT_NEAR(pre.K1(), tech.cs / denom, 1e-12);
  EXPECT_NEAR(pre.K2(), tech.Cbb() / denom, 1e-12);
  EXPECT_LT(pre.K2(), pre.K1());
}

TEST(PreSensing, UStartsAtOneAndDecaysToZero) {
  const PreSensingModel pre(DefaultTech());
  EXPECT_DOUBLE_EQ(pre.U(0.0), 1.0);
  EXPECT_DOUBLE_EQ(pre.U(-1.0), 1.0);
  EXPECT_GT(pre.U(0.5e-9), pre.U(2e-9));
  EXPECT_LT(pre.U(100e-9), 1e-3);
}

TEST(PreSensing, UMatchesEq3Form) {
  const TechnologyParams tech = DefaultTech();
  const PreSensingModel pre(tech);
  const double t = 1.5e-9;
  const double cs = tech.cs;
  const double cbl = tech.Cbl();
  const double rpre = tech.ron_access + tech.Rbl();
  const double expected = (cs * std::exp(-t / (rpre * cbl)) +
                           cbl * std::exp(-t / (rpre * cs))) /
                          (cs + cbl);
  EXPECT_NEAR(pre.U(t), expected, 1e-12);
}

TEST(PreSensing, UncoupledSenseVoltageMatchesEq4) {
  const TechnologyParams tech = DefaultTech();
  const PreSensingModel pre(tech);
  const double expected =
      tech.cs / (tech.cs + tech.Cbl()) * (tech.vdd - tech.Veq());
  EXPECT_NEAR(pre.UncoupledSenseVoltage(tech.vdd), expected, 1e-12);
}

TEST(PreSensing, AllOnesSenseVoltagesArePositive) {
  const PreSensingModel pre(DefaultTech());
  for (const double v :
       pre.SenseVoltagesForPattern(DataPattern::kAllOnes, 1.0)) {
    EXPECT_GT(v, 0.0);
  }
}

TEST(PreSensing, AllZerosSenseVoltagesAreNegative) {
  const PreSensingModel pre(DefaultTech());
  for (const double v :
       pre.SenseVoltagesForPattern(DataPattern::kAllZeros, 1.0)) {
    EXPECT_LT(v, 0.0);
  }
}

TEST(PreSensing, SameDataNeighboursAmplify) {
  // Coupling helps when neighbours move the same way: the interior
  // all-ones sense voltage exceeds the uncoupled Eq. 4 value computed with
  // the same effective K1 denominator.
  const TechnologyParams tech = DefaultTech();
  const PreSensingModel pre(tech);
  const auto vs = pre.SenseVoltagesForPattern(DataPattern::kAllOnes, 1.0);
  const double uncoupled = pre.K1() * (tech.vdd - tech.Veq());
  EXPECT_GT(vs[tech.columns / 2], uncoupled);
}

TEST(PreSensing, AlternatingPatternIsWorstCase) {
  const PreSensingModel pre(DefaultTech());
  const double worst_alt =
      pre.WorstSenseVoltage(DataPattern::kAlternating, 1.0);
  const double worst_ones = pre.WorstSenseVoltage(DataPattern::kAllOnes, 1.0);
  EXPECT_LT(worst_alt, worst_ones);
  EXPECT_LE(pre.WorstSenseVoltageAllPatterns(1.0), worst_alt);
}

TEST(PreSensing, TrackedSenseVoltageDropsWithCharge) {
  const PreSensingModel pre(DefaultTech());
  EXPECT_GT(pre.WorstTrackedSenseVoltage(1.0),
            pre.WorstTrackedSenseVoltage(0.8));
  EXPECT_GT(pre.WorstTrackedSenseVoltage(0.8),
            pre.WorstTrackedSenseVoltage(0.6));
}

TEST(PreSensing, TrackedCellAtHalfChargeIsNegative) {
  // At 50% the cell sits at Veq; neighbour drag under the worst pattern
  // pushes the sensed value below zero (read as '0').
  const PreSensingModel pre(DefaultTech());
  EXPECT_LT(pre.WorstTrackedSenseVoltage(0.5), 0.0);
}

TEST(PreSensing, DevelopedVoltageGrowsWithTime) {
  const PreSensingModel pre(DefaultTech());
  const double vs = 0.05;
  EXPECT_LT(pre.DevelopedVoltage(vs, 0.5e-9), pre.DevelopedVoltage(vs, 5e-9));
  EXPECT_LE(pre.DevelopedVoltage(vs, 1e-6), vs + 1e-12);
}

TEST(PreSensing, RejectsEmptyCellVector) {
  const PreSensingModel pre(DefaultTech());
  EXPECT_THROW(pre.SenseVoltages({}), ConfigError);
}

// ---------------------------------------------------------------------------
// PostSensingModel (§2.3, Eq. 9-12)
// ---------------------------------------------------------------------------

TEST(PostSensing, T1MatchesEq9) {
  const TechnologyParams tech = DefaultTech();
  const PostSensingModel post(tech);
  EXPECT_NEAR(post.T1(),
              tech.Cbl() * tech.vt_p / post.SenseSaturationCurrent(), 1e-15);
}

TEST(PostSensing, T2ShrinksWithLargerSignal) {
  const PostSensingModel post(DefaultTech());
  EXPECT_GT(post.T2(0.005), post.T2(0.05));
}

TEST(PostSensing, T2IsZeroForHugeSignal) {
  const PostSensingModel post(DefaultTech());
  EXPECT_DOUBLE_EQ(post.T2(10.0), 0.0);
}

TEST(PostSensing, T2RejectsNonPositiveSignal) {
  const PostSensingModel post(DefaultTech());
  EXPECT_THROW(post.T2(0.0), ConfigError);
  EXPECT_THROW(post.T2(-0.01), ConfigError);
}

TEST(PostSensing, CpostMatchesEq12) {
  const TechnologyParams tech = DefaultTech();
  const PostSensingModel post(tech);
  EXPECT_NEAR(post.Cpost(),
              tech.cs + tech.Cbl() + 2 * tech.Cbb() + tech.Cbw(), 1e-20);
}

TEST(PostSensing, NoRestoreWithinSensingDelay) {
  const PostSensingModel post(DefaultTech());
  const double dv = 0.02;
  const double v0 = 0.62;
  EXPECT_DOUBLE_EQ(post.RestoredVoltage(v0, dv, 0.5 * post.SensingDelay(dv)),
                   v0);
}

TEST(PostSensing, RestoreApproachesVddAsymptotically) {
  const TechnologyParams tech = DefaultTech();
  const PostSensingModel post(tech);
  const double v = post.RestoredVoltage(0.62, 0.02, 500e-9);
  EXPECT_GT(v, 0.999 * tech.vdd);
  EXPECT_LE(v, tech.vdd);
}

TEST(PostSensing, RestoreIsMonotoneInTime) {
  const PostSensingModel post(DefaultTech());
  double prev = 0.0;
  for (int i = 1; i <= 40; ++i) {
    const double v = post.RestoredVoltage(0.62, 0.02, i * 1e-9);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(PostSensing, TimeToRestoreInvertsRestoredVoltage) {
  const PostSensingModel post(DefaultTech());
  const double v0 = 0.61;
  const double dv = 0.015;
  const double target = 1.1;
  const double t = post.TimeToRestore(v0, dv, target);
  EXPECT_NEAR(post.RestoredVoltage(v0, dv, t), target, 1e-9);
}

TEST(PostSensing, TimeToRestoreRejectsVdd) {
  const TechnologyParams tech = DefaultTech();
  const PostSensingModel post(tech);
  EXPECT_THROW(post.TimeToRestore(0.6, 0.02, tech.vdd), NumericalError);
}

TEST(PostSensing, LastFivePercentDominates) {
  // Observation 1: restoring 95% -> ~100% costs a large share of the
  // restore time.
  const TechnologyParams tech = DefaultTech();
  const PostSensingModel post(tech);
  const double v0 = 0.62;
  const double dv = 0.02;
  const double t95 = post.TimeToRestore(v0, dv, 0.95 * tech.vdd);
  const double t999 = post.TimeToRestore(v0, dv, 0.9995 * tech.vdd);
  EXPECT_GT((t999 - t95) / t999, 0.35);
}

// ---------------------------------------------------------------------------
// RefreshModel (Eq. 13 + §3.1)
// ---------------------------------------------------------------------------

TEST(RefreshModel, TrfcComposition) {
  const RefreshModel m(DefaultTech());
  const TimingBreakdown t = m.FullRefreshTimings();
  EXPECT_EQ(t.trfc(), t.tau_eq + t.tau_pre + t.tau_post + t.tau_fixed);
  EXPECT_NEAR(t.trfc_s(),
              t.tau_eq_s + t.tau_pre_s + t.tau_post_s + t.tau_fixed_s, 1e-15);
}

TEST(RefreshModel, PaperCalibration) {
  // The §3.1 setup: τeq = 1 cycle, τpre = 2 cycles, τfixed = 4 cycles, and
  // τ_partial / τ_full ≈ 11/19 ≈ 0.58.
  const RefreshModel m(DefaultTech());
  const TimingBreakdown full = m.FullRefreshTimings();
  const TimingBreakdown part = m.PartialRefreshTimings();
  EXPECT_EQ(full.tau_eq, 1u);
  EXPECT_EQ(full.tau_pre, 2u);
  EXPECT_EQ(full.tau_fixed, 4u);
  const double ratio = static_cast<double>(part.trfc()) /
                       static_cast<double>(full.trfc());
  EXPECT_NEAR(ratio, 11.0 / 19.0, 0.05);
}

TEST(RefreshModel, CalibrationPin) {
  // Pins the exact default calibration that EXPERIMENTS.md records
  // (full 26 = 1/2/19/4, partial 15 = 1/2/8/4).  If a parameter change
  // moves these, re-derive the documented numbers before accepting it.
  const RefreshModel m(DefaultTech());
  const TimingBreakdown full = m.FullRefreshTimings();
  const TimingBreakdown partial = m.PartialRefreshTimings();
  EXPECT_EQ(full.tau_post, 19u);
  EXPECT_EQ(full.trfc(), 26u);
  EXPECT_EQ(partial.tau_post, 8u);
  EXPECT_EQ(partial.trfc(), 15u);
}

TEST(RefreshModel, PartialIsCheaperThanFull) {
  const RefreshModel m(DefaultTech());
  EXPECT_LT(m.PartialRefreshTimings().trfc(), m.FullRefreshTimings().trfc());
}

TEST(RefreshModel, RestoreCurveHits95PercentNear60PercentOfTrfc) {
  // Observation 1 / Fig. 1a: ~60% of tRFC restores 95% of the charge.
  const RefreshModel m(DefaultTech());
  const auto curve = m.RestoreCurve();
  const double x95 = curve.InverseLookup(0.95);
  EXPECT_GT(x95, 0.50);
  EXPECT_LT(x95, 0.70);
}

TEST(RefreshModel, RestoreCurveIsMonotone) {
  const RefreshModel m(DefaultTech());
  const auto curve = m.RestoreCurve(100);
  const auto& ys = curve.ys();
  for (std::size_t i = 1; i < ys.size(); ++i) {
    EXPECT_GE(ys[i], ys[i - 1] - 1e-12);
  }
  EXPECT_NEAR(ys.front(), 0.0, 1e-9);
  EXPECT_NEAR(ys.back(), 1.0, 1e-9);
}

TEST(RefreshModel, MinReadableFractionIsAboveHalf) {
  const RefreshModel m(DefaultTech());
  const double f = m.MinReadableFraction();
  EXPECT_GT(f, 0.5);
  EXPECT_LT(f, 0.7);
  // At that fraction the sensed swing equals the SA margin.
  EXPECT_NEAR(m.SensingDeltaV(f), m.tech().v_sense_min, 1e-6);
}

TEST(RefreshModel, ApplyRefreshRestoresHealthyCell) {
  const RefreshModel m(DefaultTech());
  const auto out =
      m.ApplyRefresh(0.85, m.FullRefreshTimings().tau_post_s);
  EXPECT_TRUE(out.sense_ok);
  EXPECT_GT(out.fraction_after, 0.99);
}

TEST(RefreshModel, ApplyRefreshFailsBelowReadable) {
  const RefreshModel m(DefaultTech());
  const double f = m.MinReadableFraction() - 0.05;
  const auto out = m.ApplyRefresh(f, m.FullRefreshTimings().tau_post_s);
  EXPECT_FALSE(out.sense_ok);
  EXPECT_DOUBLE_EQ(out.fraction_after, f);
}

TEST(RefreshModel, ApplyRefreshHonorsRestoreCap) {
  const RefreshModel m(DefaultTech());
  const auto out =
      m.ApplyRefresh(0.9, m.FullRefreshTimings().tau_post_s, 0.8);
  EXPECT_TRUE(out.sense_ok);
  EXPECT_DOUBLE_EQ(out.fraction_after, 0.8);
}

TEST(RefreshModel, PartialRestoreCapCompounds) {
  const RefreshModel m(DefaultTech());
  EXPECT_DOUBLE_EQ(m.PartialRestoreCap(0), 1.0);
  const double c1 = m.PartialRestoreCap(1);
  const double c2 = m.PartialRestoreCap(2);
  const double c3 = m.PartialRestoreCap(3);
  EXPECT_NEAR(c1, m.spec().partial_target, 1e-12);
  EXPECT_LT(c2, c1);
  EXPECT_LT(c3, c2);
  EXPECT_GE(c3, 0.0);
}

TEST(RefreshModel, MinPreSensingCyclesGrowsWithRows) {
  const RefreshModel small(DefaultTech().WithGeometry(2048, 32));
  const RefreshModel mid(DefaultTech().WithGeometry(8192, 32));
  const RefreshModel large(DefaultTech().WithGeometry(16384, 32));
  const Cycles c_small = small.MinPreSensingCycles(
      0.95, small.FullRefreshTimings().tau_post);
  const Cycles c_mid =
      mid.MinPreSensingCycles(0.95, mid.FullRefreshTimings().tau_post);
  const Cycles c_large = large.MinPreSensingCycles(
      0.95, large.FullRefreshTimings().tau_post);
  EXPECT_LT(c_small, c_mid);
  EXPECT_LT(c_mid, c_large);
}

TEST(RefreshModel, MinPreSensingCyclesGrowsWithColumns) {
  const RefreshModel narrow(DefaultTech().WithGeometry(8192, 32));
  const RefreshModel wide(DefaultTech().WithGeometry(8192, 128));
  EXPECT_LE(narrow.MinPreSensingCycles(
                0.95, narrow.FullRefreshTimings().tau_post),
            wide.MinPreSensingCycles(0.95,
                                     wide.FullRefreshTimings().tau_post));
}

TEST(RefreshModel, MinPreSensingCyclesRejectsBadTarget) {
  const RefreshModel m(DefaultTech());
  EXPECT_THROW(m.MinPreSensingCycles(0.5, 10), ConfigError);
  EXPECT_THROW(m.MinPreSensingCycles(1.0, 10), ConfigError);
}

TEST(RefreshModel, MinPreSensingCyclesThrowsOnTinyBudget) {
  const RefreshModel m(DefaultTech());
  EXPECT_THROW(m.MinPreSensingCycles(0.95, 1), NumericalError);
}

TEST(RefreshModel, RejectsInvalidSpec) {
  RefreshModel::Spec spec;
  spec.start_fraction = 0.4;
  EXPECT_THROW(RefreshModel(DefaultTech(), spec), ConfigError);

  spec = RefreshModel::Spec{};
  spec.partial_target = 0.9999;  // above full target
  EXPECT_THROW(RefreshModel(DefaultTech(), spec), ConfigError);
}

// ---------------------------------------------------------------------------
// SingleCellModel (Li et al. baseline)
// ---------------------------------------------------------------------------

TEST(SingleCell, PreSensingCyclesIsGeometryIndependent) {
  const SingleCellModel small(DefaultTech().WithGeometry(2048, 32));
  const SingleCellModel large(DefaultTech().WithGeometry(16384, 128));
  EXPECT_EQ(small.PreSensingCycles(), large.PreSensingCycles());
}

TEST(SingleCell, PreSensingCyclesNearPaperValue) {
  const SingleCellModel sc(DefaultTech());
  EXPECT_GE(sc.PreSensingCycles(), 4u);
  EXPECT_LE(sc.PreSensingCycles(), 8u);
}

TEST(SingleCell, UnderestimatesLargeArrays) {
  // Table 1's message: the single-cell model underestimates pre-sensing
  // time for large banks because it ignores the real bitline load.
  const TechnologyParams tech = DefaultTech().WithGeometry(16384, 128);
  const RefreshModel ours(tech);
  const SingleCellModel baseline(tech);
  EXPECT_LT(baseline.PreSensingCycles(),
            ours.MinPreSensingCycles(0.95,
                                     ours.FullRefreshTimings().tau_post));
}

TEST(SingleCell, EqualizationIsSingleExponential) {
  const TechnologyParams tech = DefaultTech();
  const SingleCellModel sc(tech);
  EXPECT_DOUBLE_EQ(sc.EqualizationVoltageAt(true, 0.0), tech.vdd);
  EXPECT_DOUBLE_EQ(sc.EqualizationVoltageAt(false, 0.0), tech.vss);
  EXPECT_NEAR(sc.EqualizationVoltageAt(true, 1e-6), tech.Veq(), 1e-6);
  // No phase-1 plateau: strictly exponential decay from t=0 (the real
  // two-phase model drops linearly first).
  const double v1 = sc.EqualizationVoltageAt(true, 0.1e-9);
  EXPECT_LT(v1, tech.vdd);
}

TEST(SingleCell, SenseVoltageUsesNominalLoad) {
  const TechnologyParams small = DefaultTech().WithGeometry(2048, 32);
  const TechnologyParams large = DefaultTech().WithGeometry(16384, 32);
  const SingleCellModel a(small);
  const SingleCellModel b(large);
  EXPECT_DOUBLE_EQ(a.SenseVoltage(1.0), b.SenseVoltage(1.0));
}

}  // namespace
}  // namespace vrl::model
