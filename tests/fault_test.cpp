#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/experiments.hpp"
#include "core/vrl_system.hpp"
#include "fault/adaptive_policy.hpp"
#include "fault/campaign.hpp"
#include "fault/charge_tracker.hpp"
#include "fault/injector.hpp"
#include "model/refresh_model.hpp"
#include "retention/temperature.hpp"
#include "retention/vrt.hpp"

namespace vrl::fault {
namespace {

// ---------------------------------------------------------------------------
// ChargeTracker
// ---------------------------------------------------------------------------

TEST(ChargeTracker, FullRefreshOnScheduleKeepsMarginPositive) {
  const model::RefreshModel model{TechnologyParams{}};
  ChargeTracker tracker(model, 2);
  const double tau_post = model.FullRefreshTimings().tau_post_s;
  // A 64 ms schedule against 200 ms retention: comfortably safe.
  for (int i = 1; i <= 20; ++i) {
    const auto result =
        tracker.Refresh(0, 0.064 * i, 0.2, /*is_full=*/true, tau_post);
    EXPECT_TRUE(result.sense_ok);
    EXPECT_GT(result.margin, 0.0);
  }
  EXPECT_GT(tracker.min_margin(), 0.0);
}

TEST(ChargeTracker, LateRefreshFailsToSense) {
  const model::RefreshModel model{TechnologyParams{}};
  ChargeTracker tracker(model, 1);
  const double tau_post = model.FullRefreshTimings().tau_post_s;
  // Decaying for 4x the retention target leaves nothing to sense.
  const auto result = tracker.Refresh(0, 0.8, 0.2, true, tau_post);
  EXPECT_FALSE(result.sense_ok);
  EXPECT_LT(result.margin, 0.0);
  EXPECT_LT(tracker.min_margin(), 0.0);
}

TEST(ChargeTracker, RestoreResetsChargeAndPartialStreak) {
  const model::RefreshModel model{TechnologyParams{}};
  ChargeTracker tracker(model, 1);
  const double tau_post = model.PartialRefreshTimings().tau_post_s;
  tracker.Refresh(0, 0.064, 0.2, /*is_full=*/false, tau_post);
  tracker.Refresh(0, 0.128, 0.2, /*is_full=*/false, tau_post);
  EXPECT_EQ(tracker.consecutive_partials(0), 2u);
  tracker.Restore(0, 0.130);
  EXPECT_EQ(tracker.consecutive_partials(0), 0u);
  EXPECT_DOUBLE_EQ(tracker.fraction(0), model.spec().full_target);
}

TEST(ChargeTracker, ConsecutivePartialsTruncateRestore) {
  const model::RefreshModel model{TechnologyParams{}};
  ChargeTracker tracker(model, 1);
  const double tau_post = model.PartialRefreshTimings().tau_post_s;
  double prev_after = 1.0;
  // Back-to-back partials: each restore is capped lower than the last,
  // even with essentially no decay between them (10 s retention).
  for (int i = 1; i <= 3; ++i) {
    const auto result =
        tracker.Refresh(0, 0.001 * i, 10.0, /*is_full=*/false, tau_post);
    EXPECT_TRUE(result.sense_ok);
    EXPECT_LT(result.fraction_after, prev_after);
    prev_after = result.fraction_after;
  }
  EXPECT_EQ(tracker.consecutive_partials(0), 3u);
  // The compounding deficit has eaten the whole margin: a fourth
  // back-to-back partial cannot even sense the row.  This is the physics
  // the MPRSF cap exists to respect.
  const auto fourth = tracker.Refresh(0, 0.004, 10.0, false, tau_post);
  EXPECT_FALSE(fourth.sense_ok);
  EXPECT_EQ(tracker.consecutive_partials(0), 3u);
}

TEST(ChargeTracker, RejectsBadInputs) {
  const model::RefreshModel model{TechnologyParams{}};
  ChargeTracker tracker(model, 2);
  EXPECT_THROW(tracker.Refresh(2, 0.1, 0.2, true, 1e-9), ConfigError);
  EXPECT_THROW(tracker.Refresh(0, 0.1, 0.0, true, 1e-9), ConfigError);
  tracker.Refresh(0, 0.1, 0.2, true, 1e-9);
  EXPECT_THROW(tracker.Refresh(0, 0.05, 0.2, true, 1e-9), ConfigError);
  // Other rows keep their own clocks.
  EXPECT_NO_THROW(tracker.Refresh(1, 0.05, 0.2, true, 1e-9));
}

// ---------------------------------------------------------------------------
// FaultState and injectors
// ---------------------------------------------------------------------------

TEST(FaultState, RowScaleIsProductOfComponents) {
  FaultState state(4);
  EXPECT_DOUBLE_EQ(state.RowScale(2), 1.0);
  state.vrt_scale()[2] = 0.6;
  state.corruption_scale()[2] = 0.8;
  state.set_temperature_scale(0.5);
  state.set_drift_scale(0.9);
  EXPECT_DOUBLE_EQ(state.RowScale(2), 0.6 * 0.8 * 0.5 * 0.9);
  EXPECT_DOUBLE_EQ(state.RowScale(0), 0.5 * 0.9);
}

TEST(VrtFlipInjectorTest, SameSeedSameTrace) {
  retention::VrtParams params;
  params.row_fraction = 0.1;
  const auto run = [&](std::uint64_t seed) {
    FaultSchedule schedule(seed);
    schedule.Add(std::make_unique<VrtFlipInjector>(params));
    std::vector<double> trace;
    for (int tick = 0; tick < 50; ++tick) {
      schedule.Advance(0.01 * tick, 512);
      for (std::size_t row = 0; row < 512; ++row) {
        trace.push_back(schedule.RowScale(row));
      }
    }
    return trace;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

TEST(VrtFlipInjectorTest, OnlyVrtRowsFlipAndOnlyToLowRatio) {
  retention::VrtParams params;
  params.row_fraction = 0.2;
  params.low_ratio = 0.6;
  params.mean_dwell_s = 0.05;  // fast telegraph so flips happen in-test
  FaultSchedule schedule(3);
  auto injector = std::make_unique<VrtFlipInjector>(params);
  const auto* raw = injector.get();
  schedule.Add(std::move(injector));

  std::size_t low_seen = 0;
  for (int tick = 0; tick < 200; ++tick) {
    schedule.Advance(0.01 * tick, 256);
    for (std::size_t row = 0; row < 256; ++row) {
      const double scale = schedule.RowScale(row);
      if (scale != 1.0) {
        EXPECT_DOUBLE_EQ(scale, params.low_ratio);
        EXPECT_TRUE(raw->vrt_rows()[row]);
        ++low_seen;
      }
    }
  }
  EXPECT_GT(low_seen, 0u);
}

TEST(TemperatureExcursionInjectorTest, ScalesOnlyInsideWindow) {
  const retention::TemperatureModel model;
  FaultSchedule schedule(1);
  schedule.Add(std::make_unique<TemperatureExcursionInjector>(
      model, /*start_s=*/1.0, /*duration_s=*/0.5, /*peak_celsius=*/85.0));
  schedule.Advance(0.5, 8);
  EXPECT_DOUBLE_EQ(schedule.RowScale(0), 1.0);
  schedule.Advance(1.2, 8);
  const double hot = schedule.RowScale(0);
  EXPECT_LT(hot, 1.0);  // hotter = leakier
  schedule.Advance(2.0, 8);
  EXPECT_DOUBLE_EQ(schedule.RowScale(0), 1.0);
}

TEST(RetentionDriftInjectorTest, DeclinesLinearlyToFloor) {
  FaultSchedule schedule(1);
  schedule.Add(std::make_unique<RetentionDriftInjector>(/*rate_per_s=*/0.1,
                                                        /*floor_scale=*/0.7));
  schedule.Advance(1.0, 4);
  EXPECT_NEAR(schedule.RowScale(0), 0.9, 1e-12);
  schedule.Advance(10.0, 4);
  EXPECT_NEAR(schedule.RowScale(0), 0.7, 1e-12);  // floored
}

TEST(ProfileCorruptionInjectorTest, FiresOnceAndSticks) {
  FaultSchedule schedule(5);
  schedule.Add(std::make_unique<ProfileCorruptionInjector>(
      /*row_fraction=*/0.5, /*true_ratio=*/0.8, /*at_s=*/1.0));
  schedule.Advance(0.5, 512);
  for (std::size_t row = 0; row < 512; ++row) {
    EXPECT_DOUBLE_EQ(schedule.RowScale(row), 1.0);
  }
  schedule.Advance(1.5, 512);
  std::size_t corrupted = 0;
  for (std::size_t row = 0; row < 512; ++row) {
    if (schedule.RowScale(row) != 1.0) {
      EXPECT_DOUBLE_EQ(schedule.RowScale(row), 0.8);
      ++corrupted;
    }
  }
  EXPECT_GT(corrupted, 150u);
  EXPECT_LT(corrupted, 350u);
  // Sticky: the same rows stay corrupted forever after.
  schedule.Advance(100.0, 512);
  std::size_t still = 0;
  for (std::size_t row = 0; row < 512; ++row) {
    if (schedule.RowScale(row) != 1.0) {
      ++still;
    }
  }
  EXPECT_EQ(still, corrupted);
}

TEST(FaultScheduleTest, EnforcesContract) {
  FaultSchedule schedule(1);
  schedule.Add(std::make_unique<RetentionDriftInjector>(0.01, 0.5));
  EXPECT_THROW(schedule.state(), ConfigError);  // before first Advance
  EXPECT_DOUBLE_EQ(schedule.RowScale(3), 1.0);  // but scales default to 1
  schedule.Advance(1.0, 8);
  EXPECT_THROW(schedule.Advance(0.5, 8), ConfigError);   // time backward
  EXPECT_THROW(schedule.Advance(2.0, 16), ConfigError);  // rows changed
  EXPECT_NO_THROW(schedule.Advance(1.0, 8));             // equal time is fine
  EXPECT_EQ(schedule.Describe(), "retention-drift");
}

// ---------------------------------------------------------------------------
// AdaptiveVrlPolicy state machine
// ---------------------------------------------------------------------------

constexpr Cycles kWindow = 1000;
constexpr Cycles kMinPeriod = 100;

AdaptiveVrlPolicy MakeAdaptive(AdaptiveParams params = {},
                               std::size_t rows = 4) {
  dram::RowRefreshPlan plan;
  plan.period_cycles.assign(rows, kWindow);
  plan.mprsf.assign(rows, 3);
  auto inner = std::make_unique<dram::VrlPolicy>(plan, 19, 11);
  return AdaptiveVrlPolicy(std::move(inner), plan, 19, 11, kWindow,
                           kMinPeriod, params);
}

TEST(AdaptivePolicy, ValidatesConstruction) {
  dram::RowRefreshPlan plan;
  plan.period_cycles.assign(4, kWindow);
  plan.mprsf.assign(4, 1);
  EXPECT_THROW(AdaptiveVrlPolicy(nullptr, plan, 19, 11, kWindow, kMinPeriod),
               ConfigError);
  auto inner = std::make_unique<dram::VrlPolicy>(plan, 19, 11);
  dram::RowRefreshPlan wrong = plan;
  wrong.period_cycles.push_back(kWindow);
  EXPECT_THROW(AdaptiveVrlPolicy(std::move(inner), wrong, 19, 11, kWindow,
                                 kMinPeriod),
               ConfigError);
  inner = std::make_unique<dram::VrlPolicy>(plan, 19, 11);
  EXPECT_THROW(
      AdaptiveVrlPolicy(std::move(inner), plan, 19, 19, kWindow, kMinPeriod),
      ConfigError);
}

TEST(AdaptivePolicy, HealthyRowsPassThroughInner) {
  auto policy = MakeAdaptive();
  EXPECT_EQ(policy.Name(), "Adaptive(VRL)");
  EXPECT_EQ(policy.rows(), 4u);
  std::size_t inner_ops = 0;
  for (Cycles now = 0; now <= 10 * kWindow; now += 50) {
    inner_ops += policy.CollectDue(now).size();
  }
  EXPECT_GT(inner_ops, 0u);
  EXPECT_EQ(policy.stats().demotions, 0u);
}

TEST(AdaptivePolicy, DemotionHalvesMprsfThenPeriod) {
  auto policy = MakeAdaptive();
  // Base setting: mprsf 3, period 1000.  The ladder: mprsf 3 -> 1 -> 0,
  // then period 1000 -> 500 -> 250 -> 125; 125/2 < 100 saturates.
  const std::vector<std::pair<std::uint8_t, Cycles>> ladder = {
      {1, 1000}, {0, 1000}, {0, 500}, {0, 250}, {0, 125}};
  Cycles now = 10;
  for (const auto& [mprsf, period] : ladder) {
    EXPECT_EQ(policy.OnSensingFailure(1, now), FailureResponse::kCorrected);
    EXPECT_EQ(policy.DemotedSetting(1),
              std::make_pair(mprsf, period));
    now += 2;
  }
  EXPECT_EQ(policy.DemotionLevel(1), ladder.size());
  EXPECT_EQ(policy.OnSensingFailure(1, now), FailureResponse::kSaturated);
  EXPECT_EQ(policy.DemotionLevel(1), ladder.size());  // unchanged
  const auto stats = policy.stats();
  EXPECT_EQ(stats.demotions, ladder.size());
  EXPECT_EQ(stats.saturated_failures, 1u);
  EXPECT_EQ(stats.rows_demoted_now, 1u);
}

TEST(AdaptivePolicy, FailureForcesImmediateFullRefresh) {
  auto policy = MakeAdaptive();
  policy.OnSensingFailure(2, 500);
  const auto ops = policy.CollectDue(501);
  ASSERT_FALSE(ops.empty());
  EXPECT_EQ(ops.front().row, 2u);
  EXPECT_TRUE(ops.front().is_full);
  EXPECT_EQ(ops.front().trfc, 19u);
  EXPECT_EQ(policy.stats().forced_full_refreshes, 1u);
}

TEST(AdaptivePolicy, DemotedRowLeavesInnerSchedule) {
  auto policy = MakeAdaptive();
  policy.OnSensingFailure(0, 10);  // demoted: mprsf 1, period 1000
  std::size_t row0_ops = 0;
  std::size_t full_row0 = 0;
  for (Cycles now = 11; now <= 20 * kWindow; now += 50) {
    for (const auto& op : policy.CollectDue(now)) {
      if (op.row == 0) {
        ++row0_ops;
        full_row0 += op.is_full ? 1u : 0u;
      }
    }
  }
  // Forced full + one op per period: the wrapper owns row 0 now, and with
  // mprsf 1 roughly half its scheduled refreshes are full.
  EXPECT_GE(row0_ops, 20u);
  EXPECT_GE(full_row0, 10u);
}

TEST(AdaptivePolicy, PromotionNeedsCleanWindows) {
  AdaptiveParams params;
  params.promote_after_clean_windows = 2;
  auto policy = MakeAdaptive(params);
  policy.OnSensingFailure(1, 500);  // window 0, level 1
  // Too soon: window 1 < 0 + 2.
  policy.OnCleanFullRefresh(1, 1 * kWindow + 10);
  EXPECT_EQ(policy.DemotionLevel(1), 1u);
  // Window 2 reaches the threshold: promoted back to the inner policy.
  policy.OnCleanFullRefresh(1, 2 * kWindow + 10);
  EXPECT_EQ(policy.DemotionLevel(1), 0u);
  EXPECT_EQ(policy.stats().promotions, 1u);
  EXPECT_EQ(policy.stats().rows_demoted_now, 0u);
}

TEST(AdaptivePolicy, PromotionStepsDownOneLevelAtATime) {
  AdaptiveParams params;
  params.promote_after_clean_windows = 1;
  auto policy = MakeAdaptive(params);
  policy.OnSensingFailure(1, 10);
  policy.OnSensingFailure(1, 20);  // level 2: mprsf 0, period 1000
  EXPECT_EQ(policy.DemotionLevel(1), 2u);
  policy.OnCleanFullRefresh(1, 1 * kWindow + 10);
  EXPECT_EQ(policy.DemotionLevel(1), 1u);
  EXPECT_EQ(policy.DemotedSetting(1), std::make_pair(std::uint8_t{1},
                                                     Cycles{1000}));
  policy.OnCleanFullRefresh(1, 2 * kWindow + 10);
  EXPECT_EQ(policy.DemotionLevel(1), 0u);
  EXPECT_THROW(policy.DemotedSetting(1), ConfigError);
}

TEST(AdaptivePolicy, CleanRefreshOfHealthyRowIsIgnored) {
  auto policy = MakeAdaptive();
  policy.OnCleanFullRefresh(3, 5 * kWindow);
  EXPECT_EQ(policy.stats().promotions, 0u);
}

TEST(AdaptivePolicy, FallbackEntersAtThresholdAndRefreshesFullRate) {
  AdaptiveParams params;
  params.fallback_enter_failures = 3;
  auto policy = MakeAdaptive(params);
  policy.OnSensingFailure(0, 100);
  policy.OnSensingFailure(1, 110);
  EXPECT_FALSE(policy.InFallback());
  policy.OnSensingFailure(2, 120);  // third failure in window 0
  EXPECT_TRUE(policy.InFallback());
  EXPECT_EQ(policy.stats().fallback_entries, 1u);

  // Row 3 (healthy) is now refreshed at the full JEDEC rate by the wrapper.
  std::size_t row3_fulls = 0;
  for (Cycles now = 121; now < 121 + 2 * kWindow; now += 10) {
    for (const auto& op : policy.CollectDue(now)) {
      if (op.row == 3) {
        EXPECT_TRUE(op.is_full);
        ++row3_fulls;
      }
    }
  }
  EXPECT_GE(row3_fulls, 2u);
}

TEST(AdaptivePolicy, FallbackExitsAfterCleanWindowsWithHysteresis) {
  AdaptiveParams params;
  params.fallback_enter_failures = 2;
  params.fallback_exit_clean_windows = 2;
  auto policy = MakeAdaptive(params);
  policy.OnSensingFailure(0, 100);
  policy.OnSensingFailure(1, 110);
  EXPECT_TRUE(policy.InFallback());

  // A failure in window 1 resets the clean-window streak.
  policy.OnSensingFailure(2, 1 * kWindow + 50);

  // Windows 2 and 3 are clean; the exit lands when window 4 begins.
  policy.CollectDue(2 * kWindow + 1);
  EXPECT_TRUE(policy.InFallback());
  policy.CollectDue(3 * kWindow + 1);
  EXPECT_TRUE(policy.InFallback());  // only one clean window so far
  policy.CollectDue(4 * kWindow + 1);
  EXPECT_FALSE(policy.InFallback());
  EXPECT_EQ(policy.stats().fallback_exits, 1u);
}

TEST(AdaptivePolicy, FallbackDisabledWhenThresholdZero) {
  AdaptiveParams params;
  params.fallback_enter_failures = 0;
  auto policy = MakeAdaptive(params);
  for (int i = 0; i < 100; ++i) {
    policy.OnSensingFailure(0, 100 + static_cast<Cycles>(i));
  }
  EXPECT_FALSE(policy.InFallback());
}

TEST(AdaptivePolicy, RowAccessResetsDemotedPartialCounter) {
  auto policy = MakeAdaptive();
  policy.OnSensingFailure(1, 10);  // mprsf 1, period 1000
  policy.CollectDue(11);           // drain the forced full
  // First scheduled op would be a partial (rcount 0 -> 1)...
  std::size_t partials = 0;
  for (Cycles now = 12; now <= 5 * kWindow; now += 100) {
    policy.OnRowAccess(1);  // ...but every access resets the counter,
    for (const auto& op : policy.CollectDue(now)) {
      if (op.row == 1 && !op.is_full) {
        ++partials;
      }
    }
  }
  // so the demoted row's schedule emits partials, never two in a row.
  EXPECT_GT(partials, 0u);
}

// ---------------------------------------------------------------------------
// Campaign: acceptance comparison (ISSUE: adaptive survives what plain
// VRL does not, and keeps the refresh-overhead saving)
// ---------------------------------------------------------------------------

TEST(Campaign, SetupValidates) {
  CampaignSetup setup;
  setup.tau_post_full_s = 1e-9;
  setup.tau_post_partial_s = 1e-9;
  EXPECT_NO_THROW(setup.Validate());
  setup.windows = 0;
  EXPECT_THROW(setup.Validate(), ConfigError);
  setup = CampaignSetup{};
  setup.tau_post_full_s = 1e-9;
  setup.tau_post_partial_s = 1e-9;
  setup.t_refi = 0;
  EXPECT_THROW(setup.Validate(), ConfigError);
}

TEST(Campaign, AdaptiveSurvivesVrtWherePlainVrlLosesData) {
  core::VrlConfig config;
  config.banks = 1;
  const core::VrlSystem system(config);

  retention::VrtParams vrt;  // defaults: row_fraction 0.02, low_ratio 0.6
  const auto result = core::RunResilienceComparison(
      system, core::PolicyKind::kVrl, vrt, /*windows=*/8,
      /*fault_seed=*/0xFA11ULL);

  // The JEDEC baseline never fails (full rate, full latency).
  EXPECT_EQ(result.jedec.detected_failures, 0u);
  EXPECT_FALSE(result.jedec.DataLost());

  // Plain VRL trusts the stale profile: VRT flips silently lose data.
  EXPECT_TRUE(result.plain.DataLost());
  EXPECT_GT(result.plain.unrecovered_failures, 0u);
  EXPECT_EQ(result.plain.corrected_failures, 0u);
  EXPECT_LT(result.plain.min_margin, 0.0);

  // Same fault trace: the adaptive wrapper detects every failure, corrects
  // all of them, and ends with zero unrecovered failures...
  EXPECT_GT(result.adaptive.detected_failures, 0u);
  EXPECT_EQ(result.adaptive.corrected_failures,
            result.adaptive.detected_failures);
  EXPECT_EQ(result.adaptive.unrecovered_failures, 0u);
  EXPECT_FALSE(result.adaptive.DataLost());
  EXPECT_GT(result.adaptive.adaptive.demotions, 0u);

  // ...while retaining a measurable refresh-overhead saving vs JEDEC.
  EXPECT_LT(result.AdaptiveOverheadVsJedec(), 0.8);
  EXPECT_LT(result.adaptive.refresh_busy_cycles,
            result.jedec.refresh_busy_cycles);
}

TEST(Campaign, ThreeLegsShareTheFaultTrace) {
  core::VrlConfig config;
  config.banks = 1;
  const core::VrlSystem system(config);
  retention::VrtParams vrt;
  const auto a = core::RunResilienceComparison(system, core::PolicyKind::kVrl,
                                               vrt, 4, 77);
  const auto b = core::RunResilienceComparison(system, core::PolicyKind::kVrl,
                                               vrt, 4, 77);
  // Deterministic end to end.
  EXPECT_EQ(a.plain.detected_failures, b.plain.detected_failures);
  EXPECT_EQ(a.adaptive.detected_failures, b.adaptive.detected_failures);
  EXPECT_EQ(a.adaptive.refresh_busy_cycles, b.adaptive.refresh_busy_cycles);
  EXPECT_DOUBLE_EQ(a.plain.min_margin, b.plain.min_margin);
}

TEST(Campaign, RejectsJedecAsComparisonPolicy) {
  core::VrlConfig config;
  config.banks = 1;
  const core::VrlSystem system(config);
  retention::VrtParams vrt;
  EXPECT_THROW(core::RunResilienceComparison(
                   system, core::PolicyKind::kJedec, vrt, 2, 1),
               ConfigError);
}

}  // namespace
}  // namespace vrl::fault
