#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/experiments.hpp"
#include "core/sweep.hpp"
#include "core/vrl_system.hpp"

namespace vrl::core {
namespace {

/// Shared system for the (relatively expensive) integration tests.
class VrlSystemTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    VrlConfig config;
    config.banks = 2;
    system_ = new VrlSystem(config);
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }

  static VrlSystem* system_;
};

VrlSystem* VrlSystemTest::system_ = nullptr;

TEST_F(VrlSystemTest, TauPartialIsCheaper) {
  EXPECT_LT(system_->TauPartialCycles(), system_->TauFullCycles());
  // The paper's ratio: τ_partial/τ_full = 11/19 ≈ 0.58.
  const double ratio = static_cast<double>(system_->TauPartialCycles()) /
                       static_cast<double>(system_->TauFullCycles());
  EXPECT_NEAR(ratio, 0.58, 0.06);
}

TEST_F(VrlSystemTest, MprsfIsCappedByNbits) {
  const auto cap = system_->config().MprsfCap();
  EXPECT_EQ(cap, 3u);
  for (const auto m : system_->row_mprsf()) {
    EXPECT_LE(m, cap);
  }
  EXPECT_EQ(system_->row_mprsf().size(), system_->config().tech.rows);
}

TEST_F(VrlSystemTest, BinningCoversAllRows) {
  std::size_t total = 0;
  for (const auto n : system_->binning().rows_per_bin) {
    total += n;
  }
  EXPECT_EQ(total, system_->config().tech.rows);
}

TEST_F(VrlSystemTest, PolicyOrderingHolds) {
  // JEDEC >= RAIDR >= VRL >= VRL-Access on refresh overhead, for a
  // row-sweeping workload.
  const Cycles horizon = system_->HorizonForWindows(8);
  Rng rng(7);
  const auto records = trace::GenerateTrace(trace::SuiteWorkload("bgsave"),
                                            system_->Geometry(), horizon, rng);
  const auto requests =
      trace::MapToRequests(records, trace::AddressMapper(system_->Geometry()));

  const double jedec =
      system_->Simulate(PolicyKind::kJedec, requests, horizon)
          .RefreshOverheadPerBank();
  const double raidr =
      system_->Simulate(PolicyKind::kRaidr, requests, horizon)
          .RefreshOverheadPerBank();
  const double vrl = system_->Simulate(PolicyKind::kVrl, requests, horizon)
                         .RefreshOverheadPerBank();
  const double vrl_access =
      system_->Simulate(PolicyKind::kVrlAccess, requests, horizon)
          .RefreshOverheadPerBank();

  EXPECT_GT(jedec, raidr);
  EXPECT_GT(raidr, vrl);
  EXPECT_GT(vrl, vrl_access);
}

TEST_F(VrlSystemTest, VrlSavingsInPaperRange) {
  // The headline: VRL cuts refresh overhead vs RAIDR by ~23% (we accept
  // 15-35%), application-independent.
  const Cycles horizon = system_->HorizonForWindows(8);
  const double raidr = system_->Simulate(PolicyKind::kRaidr, {}, horizon)
                           .RefreshOverheadPerBank();
  const double vrl =
      system_->Simulate(PolicyKind::kVrl, {}, horizon).RefreshOverheadPerBank();
  const double saving = 1.0 - vrl / raidr;
  EXPECT_GT(saving, 0.15);
  EXPECT_LT(saving, 0.35);
}

TEST_F(VrlSystemTest, VrlOverheadIsApplicationIndependent) {
  const Cycles horizon = system_->HorizonForWindows(4);
  Rng rng(3);
  const auto records = trace::GenerateTrace(trace::SuiteWorkload("canneal"),
                                            system_->Geometry(), horizon, rng);
  const auto requests =
      trace::MapToRequests(records, trace::AddressMapper(system_->Geometry()));
  const double with_trace =
      system_->Simulate(PolicyKind::kVrl, requests, horizon)
          .RefreshOverheadPerBank();
  const double without =
      system_->Simulate(PolicyKind::kVrl, {}, horizon)
          .RefreshOverheadPerBank();
  EXPECT_DOUBLE_EQ(with_trace, without);
}

TEST_F(VrlSystemTest, GeometryMatchesConfig) {
  const auto g = system_->Geometry();
  EXPECT_EQ(g.banks, system_->config().banks);
  EXPECT_EQ(g.rows, system_->config().tech.rows);
  EXPECT_EQ(g.columns, system_->config().tech.columns);
}

TEST_F(VrlSystemTest, RunWorkloadNormalizations) {
  const auto result = RunWorkload(*system_, trace::SuiteWorkload("vips"), 4,
                                  power::EnergyParams{});
  EXPECT_EQ(result.workload, "vips");
  EXPECT_LT(result.VrlNormalized(), 1.0);
  EXPECT_LE(result.VrlAccessNormalized(), result.VrlNormalized());
  EXPECT_LT(result.vrl_refresh_power_mw, result.raidr_refresh_power_mw);
}

TEST(VrlConfigTest, ValidatesNbits) {
  VrlConfig config;
  config.nbits = 0;
  EXPECT_THROW(config.Validate(), ConfigError);
  config.nbits = 9;
  EXPECT_THROW(config.Validate(), ConfigError);
  config.nbits = 3;
  EXPECT_NO_THROW(config.Validate());
  EXPECT_EQ(config.MprsfCap(), 7u);
}

TEST(VrlConfigTest, ValidatesBanks) {
  VrlConfig config;
  config.banks = 0;
  EXPECT_THROW(config.Validate(), ConfigError);
}

TEST(PolicyNameTest, AllNamesDistinct) {
  EXPECT_EQ(PolicyName(PolicyKind::kJedec), "JEDEC");
  EXPECT_EQ(PolicyName(PolicyKind::kRaidr), "RAIDR");
  EXPECT_EQ(PolicyName(PolicyKind::kVrl), "VRL");
  EXPECT_EQ(PolicyName(PolicyKind::kVrlAccess), "VRL-Access");
}

TEST(AverageTest, AveragesNormalizedOverheads) {
  std::vector<WorkloadResult> results(2);
  results[0].raidr_overhead = 100;
  results[0].vrl_overhead = 80;
  results[0].vrl_access_overhead = 60;
  results[0].raidr_refresh_power_mw = 10;
  results[0].vrl_refresh_power_mw = 9;
  results[0].vrl_access_refresh_power_mw = 8;
  results[1] = results[0];
  results[1].vrl_overhead = 70;
  const auto avg = Average(results);
  EXPECT_NEAR(avg.vrl, 0.75, 1e-12);
  EXPECT_NEAR(avg.vrl_access, 0.6, 1e-12);
  EXPECT_NEAR(avg.vrl_power, 0.9, 1e-12);
}

TEST(AverageTest, EmptyIsZero) {
  const auto avg = Average({});
  EXPECT_DOUBLE_EQ(avg.vrl, 0.0);
}

// ---------------------------------------------------------------------------
// Design-space sweep
// ---------------------------------------------------------------------------

TEST(Sweep, DefaultGridCoversTheKnobs) {
  const auto grid = DefaultGrid();
  EXPECT_GE(grid.size(), 6u);
  bool has_guard = false;
  bool has_salp = false;
  for (const auto& p : grid) {
    if (p.retention_guardband > 1.0) {
      has_guard = true;
    }
    if (p.subarrays > 1) {
      has_salp = true;
    }
  }
  EXPECT_TRUE(has_guard);
  EXPECT_TRUE(has_salp);
}

TEST(Sweep, PointLabelIsReadable) {
  SweepPoint p;
  p.nbits = 3;
  p.partial_target = 0.92;
  EXPECT_EQ(p.Label(), "n3 t0.92 g1.00 s1");
}

TEST(Sweep, RunSweepEvaluatesEveryPoint) {
  VrlConfig base;
  base.banks = 1;
  std::vector<SweepPoint> points(2);
  points[1].nbits = 1;
  const auto results =
      RunSweep(base, points, trace::SuiteWorkload("swaptions"), 2);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_LT(r.vrl_normalized, 1.0);
    EXPECT_LE(r.vrl_access_normalized, r.vrl_normalized + 1e-9);
    EXPECT_GT(r.logic_area_um2, 0.0);
    EXPECT_GT(r.mean_mprsf, 0.0);
  }
  // Narrower counters cannot beat wider ones on pure VRL.
  EXPECT_LE(results[0].vrl_normalized, results[1].vrl_normalized + 1e-9);
}

TEST(Sweep, RejectsEmptyInput) {
  VrlConfig base;
  EXPECT_THROW(RunSweep(base, {}, trace::SuiteWorkload("vips"), 2),
               ConfigError);
  EXPECT_THROW(RunSweep(base, {SweepPoint{}}, trace::SuiteWorkload("vips"), 0),
               ConfigError);
}

}  // namespace
}  // namespace vrl::core
