// Property-based tests of the analytical refresh model: invariants asserted
// across the full grid of bank geometries and across model-spec variations.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/technology.hpp"
#include "model/refresh_model.hpp"
#include "model/single_cell.hpp"

namespace vrl::model {
namespace {

// ---------------------------------------------------------------------------
// Invariants across bank geometries (the Table 1 grid and beyond)
// ---------------------------------------------------------------------------

class GeometryProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
 protected:
  TechnologyParams Tech() const {
    const auto [rows, columns] = GetParam();
    return TechnologyParams{}.WithGeometry(rows, columns);
  }
};

TEST_P(GeometryProperty, CouplingCoefficientsAreProperFractions) {
  const PreSensingModel pre(Tech());
  EXPECT_GT(pre.K1(), 0.0);
  EXPECT_LT(pre.K1(), 1.0);
  EXPECT_GT(pre.K2(), 0.0);
  EXPECT_LT(pre.K2(), pre.K1());
  // Stability of the tridiagonal system: spectral radius of the coupling
  // term is below 1 when 2*K2 < 1.
  EXPECT_LT(2.0 * pre.K2(), 1.0);
}

TEST_P(GeometryProperty, PhaseDelaysArePositiveAndOrdered) {
  const RefreshModel m(Tech());
  EXPECT_GT(m.TauEqSeconds(), 0.0);
  EXPECT_GT(m.TauPreSeconds(), 0.0);
  const auto full = m.FullRefreshTimings();
  const auto partial = m.PartialRefreshTimings();
  EXPECT_GT(full.tau_post_s, partial.tau_post_s);
  EXPECT_EQ(full.tau_eq, partial.tau_eq);
  EXPECT_EQ(full.tau_pre, partial.tau_pre);
  EXPECT_EQ(full.tau_fixed, partial.tau_fixed);
  EXPECT_LT(partial.trfc(), full.trfc());
}

TEST_P(GeometryProperty, SensingDeltaVIsMonotoneInCharge) {
  const RefreshModel m(Tech());
  double prev = -1.0;
  for (double f = 0.55; f <= 1.0; f += 0.05) {
    const double dv = m.SensingDeltaV(f);
    EXPECT_GT(dv, prev);
    prev = dv;
  }
}

TEST_P(GeometryProperty, MinReadableFractionIsConsistent) {
  const RefreshModel m(Tech());
  const double f = m.MinReadableFraction();
  EXPECT_GT(f, 0.5);
  EXPECT_LT(f, 0.75);
  EXPECT_LT(m.SensingDeltaV(f - 0.01), m.tech().v_sense_min);
  EXPECT_GT(m.SensingDeltaV(f + 0.01), m.tech().v_sense_min);
}

TEST_P(GeometryProperty, ApplyRefreshIsMonotoneInStartFraction) {
  const RefreshModel m(Tech());
  const double tau = m.PartialRefreshTimings().tau_post_s;
  double prev_after = 0.0;
  for (double f = m.MinReadableFraction() + 0.01; f <= 0.99; f += 0.05) {
    const auto out = m.ApplyRefresh(f, tau);
    ASSERT_TRUE(out.sense_ok);
    EXPECT_GE(out.fraction_after, prev_after - 1e-12);
    // Every readable cell ends at least at the partial target (a nearly
    // full cell may end *below* its starting level — that is exactly the
    // restore truncation of a partial refresh).
    if (f >= m.spec().start_fraction) {
      EXPECT_GE(out.fraction_after, m.spec().partial_target - 1e-9);
    }
    prev_after = out.fraction_after;
  }
}

TEST_P(GeometryProperty, RestoreCurveIsNormalizedAndMonotone) {
  const RefreshModel m(Tech());
  const auto curve = m.RestoreCurve(128);
  EXPECT_NEAR(curve(0.0), 0.0, 1e-9);
  EXPECT_NEAR(curve(1.0), 1.0, 1e-9);
  double prev = -1.0;
  for (double x = 0.0; x <= 1.0; x += 0.02) {
    const double y = curve(x);
    EXPECT_GE(y, prev - 1e-12);
    EXPECT_GE(y, -1e-12);
    EXPECT_LE(y, 1.0 + 1e-12);
    prev = y;
  }
}

TEST_P(GeometryProperty, TimeToRestoreInvertsRestoredVoltage) {
  const TechnologyParams tech = Tech();
  const PostSensingModel post(tech);
  const double dv = 0.02;
  const double v0 = tech.Veq() + dv;
  for (double target = 0.8; target < 1.0; target += 0.04) {
    const double v_target = target * tech.vdd;
    if (v_target <= v0) {
      continue;
    }
    const double t = post.TimeToRestore(v0, dv, v_target);
    EXPECT_NEAR(post.RestoredVoltage(v0, dv, t), v_target,
                1e-9 * tech.vdd);
  }
}

TEST_P(GeometryProperty, SingleCellModelIgnoresGeometry) {
  const SingleCellModel sc(Tech());
  const SingleCellModel reference(TechnologyParams{});
  EXPECT_EQ(sc.PreSensingCycles(), reference.PreSensingCycles());
}

TEST_P(GeometryProperty, PartialCapsCompoundMonotonically) {
  const RefreshModel m(Tech());
  double prev = 1.0;
  for (std::size_t k = 1; k <= 8; ++k) {
    const double cap = m.PartialRestoreCap(k);
    EXPECT_LE(cap, prev);
    EXPECT_GE(cap, 0.0);
    prev = cap;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BankGrid, GeometryProperty,
    ::testing::Combine(::testing::Values(std::size_t{2048}, std::size_t{4096},
                                         std::size_t{8192},
                                         std::size_t{16384}),
                       ::testing::Values(std::size_t{32}, std::size_t{64},
                                         std::size_t{128})));

// ---------------------------------------------------------------------------
// Invariants across restore-target specs
// ---------------------------------------------------------------------------

class SpecProperty : public ::testing::TestWithParam<double> {};

TEST_P(SpecProperty, TauPostGrowsWithTarget) {
  RefreshModel::Spec spec;
  spec.partial_target = GetParam();
  const RefreshModel m(TechnologyParams{}, spec);
  EXPECT_LT(m.TauPostSeconds(spec.partial_target),
            m.TauPostSeconds(spec.full_target));
  // And the generated partial refresh really restores at least its target
  // for the spec's worst-case start.
  const auto out = m.ApplyRefresh(spec.start_fraction,
                                  m.PartialRefreshTimings().tau_post_s);
  ASSERT_TRUE(out.sense_ok);
  EXPECT_GE(out.fraction_after, spec.partial_target - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Targets, SpecProperty,
                         ::testing::Values(0.85, 0.90, 0.93, 0.95, 0.97));

// ---------------------------------------------------------------------------
// Equalization model properties across drive strengths
// ---------------------------------------------------------------------------

class EqualizationProperty : public ::testing::TestWithParam<double> {};

TEST_P(EqualizationProperty, StrongerDeviceEqualizesFaster) {
  TechnologyParams weak;
  weak.wl_eq = GetParam();
  TechnologyParams strong = weak;
  strong.wl_eq = GetParam() * 2.0;
  EXPECT_GT(EqualizationModel(weak).EqualizationDelay(),
            EqualizationModel(strong).EqualizationDelay());
}

TEST_P(EqualizationProperty, TrajectoriesBracketVeq) {
  TechnologyParams tech;
  tech.wl_eq = GetParam();
  const EqualizationModel eq(tech);
  for (double t = 0.0; t < 10e-9; t += 0.2e-9) {
    EXPECT_GE(eq.VoltageAt(BitlineSide::kHigh, t), tech.Veq() - 1e-9);
    EXPECT_LE(eq.VoltageAt(BitlineSide::kLow, t), tech.Veq() + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(DriveStrengths, EqualizationProperty,
                         ::testing::Values(5.0, 10.0, 20.0, 40.0));

}  // namespace
}  // namespace vrl::model
