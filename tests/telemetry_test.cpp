// Tests for the telemetry subsystem (src/telemetry/, docs/TELEMETRY.md).
//
// Three layers:
//  1. Unit semantics pinned by the headers: histogram bucket edges, the
//     event ring's newest-window overflow behaviour, snapshot diff/merge
//     algebra, exporter formatting.
//  2. The determinism contract end to end: the merged telemetry of
//     RunEvaluationSuite and of the fault-campaign comparison must export
//     byte-identically at 1, 2 and 8 threads.
//  3. The API-redesign seams: PolicyFromName inverts PolicyName, and the
//     legacy positional experiment overloads delegate to the
//     ExperimentOptions form with identical results.

#include "telemetry/recorder.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/experiments.hpp"
#include "core/vrl_system.hpp"
#include "retention/vrt.hpp"
#include "telemetry/export.hpp"
#include "telemetry/federation.hpp"

namespace vrl::telemetry {
namespace {

// ---------------------------------------------------------------------------
// 1a. Histogram bucket semantics
// ---------------------------------------------------------------------------

TEST(Histogram, BucketCountIsEdgesPlusOverflow) {
  const Histogram h({1.0, 2.0, 4.0});
  EXPECT_EQ(h.counts().size(), 4u);
}

TEST(Histogram, ValueOnEdgeLandsInTheBucketTheEdgeCloses) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(1.0);  // closes bucket 0
  h.Observe(2.0);  // closes bucket 1
  h.Observe(4.0);  // closes bucket 2
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 0u);
}

TEST(Histogram, UnderflowJoinsFirstBucketOverflowGetsItsOwn) {
  Histogram h({1.0, 2.0});
  h.Observe(-100.0);
  h.Observe(0.5);
  h.Observe(1000.0);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 0u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), -100.0 + 0.5 + 1000.0);
}

TEST(Histogram, RejectsEmptyAndNonIncreasingEdges) {
  EXPECT_THROW(Histogram({}), ConfigError);
  EXPECT_THROW(Histogram({1.0, 1.0}), ConfigError);
  EXPECT_THROW(Histogram({2.0, 1.0}), ConfigError);
}

TEST(Histogram, LatencyBucketIndexAgreesWithObserve) {
  // The controller's per-request fast path computes the bucket with a bit
  // scan; it must land every value exactly where Observe would.
  const auto edges = LatencyBucketEdges();
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{15},
        std::uint64_t{16}, std::uint64_t{17}, std::uint64_t{32},
        std::uint64_t{33}, std::uint64_t{1000}, std::uint64_t{65536},
        std::uint64_t{65537}, std::uint64_t{1} << 40}) {
    Histogram reference(edges);
    reference.Observe(static_cast<double>(v));
    const std::size_t expected =
        static_cast<std::size_t>(std::find(reference.counts().begin(),
                                           reference.counts().end(), 1u) -
                                 reference.counts().begin());
    EXPECT_EQ(LatencyBucketIndex(v), expected) << "cycles=" << v;
  }
}

TEST(Histogram, LatencyBucketCountMatchesEdges) {
  // The banks' always-on accumulators are fixed-size arrays dimensioned by
  // this constant; it must track the runtime edge list.
  EXPECT_EQ(kLatencyBucketCount, LatencyBucketEdges().size() + 1);
}

TEST(Histogram, SlackBucketIndexAgreesWithObserve) {
  // The policies' batched op recording computes the slack bucket with a bit
  // scan; it must land every value exactly where Observe would —
  // including the dedicated on-time bucket 0 and values exactly on edges.
  const auto edges = SlackBucketEdges();
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{511},
        std::uint64_t{1023}, std::uint64_t{1024}, std::uint64_t{1025},
        std::uint64_t{4096}, std::uint64_t{4097}, std::uint64_t{100000},
        std::uint64_t{16777216}, std::uint64_t{16777217},
        std::uint64_t{1} << 40}) {
    Histogram reference(edges);
    reference.Observe(static_cast<double>(v));
    const std::size_t expected =
        static_cast<std::size_t>(std::find(reference.counts().begin(),
                                           reference.counts().end(), 1u) -
                                 reference.counts().begin());
    EXPECT_EQ(SlackBucketIndex(v), expected) << "slack=" << v;
  }
}

TEST(MetricsRegistry, HistogramEdgeMismatchThrows) {
  MetricsRegistry registry;
  registry.GetHistogram("h", {1.0, 2.0});
  EXPECT_NO_THROW(registry.GetHistogram("h", {1.0, 2.0}));
  EXPECT_THROW(registry.GetHistogram("h", {1.0, 3.0}), ConfigError);
  EXPECT_THROW(registry.GetCounter("h"), ConfigError);
}

// ---------------------------------------------------------------------------
// 1b. Event ring overflow
// ---------------------------------------------------------------------------

TEST(EventTrace, OverflowKeepsNewestAndCountsDrops) {
  EventTrace trace(3);
  for (std::uint64_t i = 0; i < 10; ++i) {
    trace.Record({EventKind::kDemotion, i, i, 0, 0.0});
  }
  const auto events = trace.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].cycle, 7u);
  EXPECT_EQ(events[1].cycle, 8u);
  EXPECT_EQ(events[2].cycle, 9u);
  EXPECT_EQ(trace.recorded(), 10u);
  EXPECT_EQ(trace.dropped(), 7u);
}

TEST(EventTrace, ZeroCapacityCountsEverythingAsDropped) {
  EventTrace trace(0);
  trace.Record({EventKind::kDemotion, 1, 0, 0, 0.0});
  EXPECT_TRUE(trace.Events().empty());
  EXPECT_EQ(trace.recorded(), 1u);
  EXPECT_EQ(trace.dropped(), 1u);
}

TEST(EventTrace, AppendPreservesOrderAndAccumulatesDrops) {
  EventTrace a(4);
  a.Record({EventKind::kDemotion, 1, 0, 0, 0.0});
  EventTrace b(1);
  b.Record({EventKind::kPromotion, 2, 0, 0, 0.0});
  b.Record({EventKind::kPromotion, 3, 0, 0, 0.0});  // displaces cycle 2
  a.Append(b);
  const auto events = a.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].cycle, 1u);
  EXPECT_EQ(events[1].cycle, 3u);
  EXPECT_EQ(a.dropped(), 1u);  // b's displaced event carries over
}

// Regression pin: Append between two *wrapped* rings (both sides past
// capacity, slots rotated) must replay the source's retained window oldest
// first through the destination ring — retained order stays chronological
// and recorded == retained + dropped on the merged side.
TEST(EventTrace, AppendBetweenWrappedRingsKeepsOrderAndAccounting) {
  EventTrace a(4);
  for (std::uint64_t i = 0; i < 8; ++i) {  // wraps twice; next_ back at 0
    a.Record({EventKind::kDemotion, i, i, 0, 0.0});
  }
  EventTrace b(3);
  for (std::uint64_t i = 100; i < 107; ++i) {  // wrapped, next_ mid-ring
    b.Record({EventKind::kPromotion, i, i, 0, 0.0});
  }
  a.Append(b);
  const auto events = a.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].cycle, 7u);    // newest survivor of a's own window
  EXPECT_EQ(events[1].cycle, 104u);  // b's retained window, oldest first
  EXPECT_EQ(events[2].cycle, 105u);
  EXPECT_EQ(events[3].cycle, 106u);
  EXPECT_EQ(a.recorded(), 15u);
  EXPECT_EQ(a.dropped(), 11u);
  EXPECT_EQ(a.recorded(), a.size() + a.dropped());
}

// ---------------------------------------------------------------------------
// 1c. Snapshot algebra + exporters
// ---------------------------------------------------------------------------

TEST(MetricsSnapshot, DiffInvertsMerge) {
  Recorder before;
  before.counter("c").Add(3);
  before.histogram("h", {1.0, 2.0}).Observe(0.5);
  const auto s0 = before.Snapshot();

  before.counter("c").Add(4);
  before.histogram("h", {1.0, 2.0}).Observe(5.0);
  const auto s1 = before.Snapshot();

  const auto delta = s1.Diff(s0);
  EXPECT_EQ(delta.metrics.at("c").count, 4u);
  EXPECT_EQ(delta.metrics.at("h").count, 1u);

  auto rebuilt = s0;
  rebuilt.MergeFrom(delta);
  EXPECT_EQ(rebuilt, s1);
}

TEST(MetricsSnapshot, GaugeTakesLatestOnMerge) {
  Recorder a;
  a.gauge("g").Set(1.0);
  Recorder b;
  b.gauge("g").Set(2.0);
  auto snapshot = a.Snapshot();
  snapshot.MergeFrom(b.Snapshot());
  EXPECT_DOUBLE_EQ(snapshot.metrics.at("g").value, 2.0);
}

TEST(Export, TimersAreSkippedByDefault) {
  Recorder recorder;
  recorder.counter("c").Add(1);
  { ScopedTimer timer(&recorder, "time.t"); }
  std::ostringstream without;
  WriteMetricsJsonl(without, recorder.Snapshot());
  EXPECT_EQ(without.str().find("time.t"), std::string::npos);
  std::ostringstream with;
  ExportOptions options;
  options.include_timers = true;
  WriteMetricsJsonl(with, recorder.Snapshot(), options);
  EXPECT_NE(with.str().find("time.t"), std::string::npos);
}

TEST(Export, FormatDoubleRoundTripsAndIsStable) {
  EXPECT_EQ(FormatDouble(0.0), "0");
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(FormatDouble(1.0 / 3.0) == "" ? 0.0 : 1.0 / 3.0),
            FormatDouble(1.0 / 3.0));
}

// ---------------------------------------------------------------------------
// 2. Determinism across thread counts
// ---------------------------------------------------------------------------

/// Deterministic byte serialization of a recorder: metrics (timers
/// excluded) followed by the event trace.
std::string ExportBytes(const Recorder& recorder) {
  std::ostringstream os;
  WriteMetricsJsonl(os, recorder.Snapshot());
  WriteEventsJsonl(os, recorder.events());
  return os.str();
}

TEST(Determinism, EvaluationSuiteTelemetryIsByteIdenticalAcrossThreads) {
  core::VrlConfig config;
  config.banks = 1;
  const core::VrlSystem system(config);

  std::string reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    Recorder sink;
    core::ExperimentOptions options;
    options.windows = 2;
    options.threads = threads;
    options.telemetry = &sink;
    const auto results = core::RunEvaluationSuite(system, options);
    EXPECT_FALSE(results.empty());
    const std::string bytes = ExportBytes(sink);
    EXPECT_GT(sink.Snapshot().metrics.size(), 0u);
    if (threads == 1) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "diverged at " << threads << " threads";
    }
  }
}

TEST(Determinism, FaultCampaignTelemetryIsByteIdenticalAcrossThreads) {
  core::VrlConfig config;
  config.banks = 1;
  const core::VrlSystem system(config);
  retention::VrtParams vrt;
  vrt.row_fraction = 0.05;

  std::string reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    Recorder sink;
    core::ExperimentOptions options;
    options.windows = 4;
    options.threads = threads;
    options.telemetry = &sink;
    const auto result =
        core::RunResilienceComparison(system, core::PolicyKind::kVrl, vrt,
                                      options);
    EXPECT_GT(result.jedec.refresh_busy_cycles, 0u);
    const std::string bytes = ExportBytes(sink);
    const auto snapshot = sink.Snapshot();
    EXPECT_GT(snapshot.metrics.count("campaign.windows"), 0u);
    EXPECT_GT(snapshot.metrics.count("campaign.sense_margin"), 0u);
    if (threads == 1) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "diverged at " << threads << " threads";
    }
  }
}

TEST(Determinism, ShardMergeMatchesSerialRecording) {
  // Recording the same per-task work into shards and merging in index
  // order must equal recording it serially into one recorder.
  Recorder serial;
  ShardedRecorder shards(4);
  for (std::size_t task = 0; task < 4; ++task) {
    for (auto* r : {&serial, &shards.shard(task)}) {
      r->counter("c").Add(task + 1);
      r->histogram("h", {1.0, 8.0})
          .Observe(static_cast<double>(task) * 2.0);
      r->Record({EventKind::kMprsfReset, task, task, 0, 0.0});
    }
  }
  Recorder merged;
  shards.MergeInto(merged);
  EXPECT_EQ(ExportBytes(merged), ExportBytes(serial));
}

// ---------------------------------------------------------------------------
// 3. API-redesign seams
// ---------------------------------------------------------------------------

TEST(PolicyFromName, InvertsPolicyNameAndNormalizes) {
  for (const auto kind :
       {core::PolicyKind::kJedec, core::PolicyKind::kRaidr,
        core::PolicyKind::kVrl, core::PolicyKind::kVrlAccess}) {
    EXPECT_EQ(core::PolicyFromName(core::PolicyName(kind)), kind);
  }
  EXPECT_EQ(core::PolicyFromName("vrl_access"), core::PolicyKind::kVrlAccess);
  EXPECT_EQ(core::PolicyFromName("VRLACCESS"), core::PolicyKind::kVrlAccess);
  EXPECT_EQ(core::PolicyFromName("jedec"), core::PolicyKind::kJedec);
  EXPECT_THROW(core::PolicyFromName("ddr5"), ConfigError);
  EXPECT_THROW(core::PolicyFromName(""), ConfigError);
}

TEST(ExperimentOptions, LegacyOverloadsDelegateWithIdenticalResults) {
  core::VrlConfig config;
  config.banks = 1;
  const core::VrlSystem system(config);
  const auto workload = trace::SuiteWorkload("canneal");
  const power::EnergyParams energy;

  const auto legacy = core::RunWorkload(system, workload, 2, energy);
  core::ExperimentOptions options;
  options.windows = 2;
  const auto modern = core::RunWorkload(system, workload, options);
  EXPECT_EQ(legacy.workload, modern.workload);
  EXPECT_DOUBLE_EQ(legacy.raidr_overhead, modern.raidr_overhead);
  EXPECT_DOUBLE_EQ(legacy.vrl_overhead, modern.vrl_overhead);
  EXPECT_DOUBLE_EQ(legacy.vrl_access_overhead, modern.vrl_access_overhead);
  EXPECT_DOUBLE_EQ(legacy.vrl_refresh_power_mw, modern.vrl_refresh_power_mw);
}

TEST(VrlSystemTelemetry, SimulatePopulatesPolicyAndDramMetrics) {
  core::VrlConfig config;
  config.banks = 1;
  core::VrlSystem system(config);
  auto* recorder = system.EnableTelemetry();
  ASSERT_NE(recorder, nullptr);
  EXPECT_EQ(system.telemetry(), recorder);

  const auto horizon = system.HorizonForWindows(1);
  system.Simulate(core::PolicyKind::kVrl, {}, horizon);
  const auto snapshot = recorder->Snapshot();
  ASSERT_GT(snapshot.metrics.count("policy.full_refreshes"), 0u);
  EXPECT_GT(snapshot.metrics.at("policy.full_refreshes").count, 0u);
  ASSERT_GT(snapshot.metrics.count("policy.partial_refreshes"), 0u);
  EXPECT_GT(snapshot.metrics.at("policy.partial_refreshes").count, 0u);
}

// ---------------------------------------------------------------------------
// Fleet federation (federation.hpp, docs/OBSERVABILITY.md)
// ---------------------------------------------------------------------------

WorkerFrame MakeFrame(std::size_t leg, std::uint64_t seq,
                      std::uint64_t counter_delta,
                      std::uint64_t frames_dropped = 0,
                      std::size_t attempt = 1) {
  WorkerFrame frame;
  frame.leg = leg;
  frame.attempt = attempt;
  frame.seq = seq;
  frame.frames_dropped = frames_dropped;
  frame.events_recorded = seq;
  Recorder scratch;
  scratch.counter("policy.full_refreshes").Add(counter_delta);
  scratch.gauge("campaign.progress_cycles").Set(static_cast<double>(seq));
  frame.delta = scratch.Snapshot();
  frame.events.push_back(
      {EventKind::kFullRefresh, seq, leg, 0, 0.0});
  return frame;
}

TEST(FederatedRegistry, MembersKeyedByWorkerAndLeg) {
  FederatedRegistry registry;
  registry.Absorb("0", MakeFrame(0, 1, 10));
  registry.Absorb("0", MakeFrame(0, 2, 5));
  registry.Absorb("1", MakeFrame(1, 1, 7));

  ASSERT_EQ(registry.members().size(), 2u);
  const auto& first = registry.members().at({"0", "leg0"});
  EXPECT_EQ(first.frames, 2u);
  EXPECT_EQ(first.snapshot.metrics.at("policy.full_refreshes").count, 15u);
  // The synthetic per-member counters keep every member's series monotone
  // even when the leg's own counters are quiet.
  EXPECT_EQ(first.snapshot.metrics.at("worker.frames_total").count, 2u);
  const auto& second = registry.members().at({"1", "leg1"});
  EXPECT_EQ(second.snapshot.metrics.at("policy.full_refreshes").count, 7u);
  EXPECT_EQ(registry.frames_received(), 3u);
  EXPECT_EQ(registry.events_received(), 3u);
}

TEST(FederatedRegistry, AggregateIsOrderInvariantAcrossMembers) {
  // Per-member streams keep their arrival order, but interleaving across
  // *different* members must not change the aggregate — ShardedRecorder's
  // sorted-fold semantics with labels as the shard index.
  FederatedRegistry a;
  a.Absorb("0", MakeFrame(0, 1, 10));
  a.Absorb("1", MakeFrame(1, 1, 3));
  a.Absorb("0", MakeFrame(0, 2, 2));

  FederatedRegistry b;
  b.Absorb("1", MakeFrame(1, 1, 3));
  b.Absorb("0", MakeFrame(0, 1, 10));
  b.Absorb("0", MakeFrame(0, 2, 2));

  const MetricsSnapshot left = a.Aggregate();
  EXPECT_EQ(left, b.Aggregate());
  EXPECT_EQ(left.metrics.at("policy.full_refreshes").count, 15u);

  std::ostringstream left_text;
  std::ostringstream right_text;
  WriteMetricsJsonl(left_text, left);
  WriteMetricsJsonl(right_text, b.Aggregate());
  EXPECT_EQ(left_text.str(), right_text.str());
}

TEST(FederatedRegistry, DropAccountingSumsLatestCumulativePerAttempt) {
  FederatedRegistry registry;
  // Attempt 1 of worker 0 reports a growing cumulative drop counter: only
  // the latest value counts, not the sum of the reports.
  registry.Absorb("0", MakeFrame(0, 1, 1, /*frames_dropped=*/0));
  registry.Absorb("0", MakeFrame(0, 2, 1, /*frames_dropped=*/2));
  registry.Absorb("0", MakeFrame(0, 3, 1, /*frames_dropped=*/5));
  EXPECT_EQ(registry.frames_dropped(), 5u);
  // A retry is a fresh attempt with its own counter; attempts accumulate.
  registry.Absorb("0", MakeFrame(0, 1, 1, /*frames_dropped=*/1,
                                 /*attempt=*/2));
  EXPECT_EQ(registry.frames_dropped(), 6u);
  // Another worker's drops add on top.
  registry.Absorb("1", MakeFrame(1, 1, 1, /*frames_dropped=*/3));
  EXPECT_EQ(registry.frames_dropped(), 9u);
  EXPECT_EQ(registry.frames_received(), 5u);
}

}  // namespace
}  // namespace vrl::telemetry
