// Tests for the scheduler-coupled refresh API (propose/grant), the policy
// registry, and the DARP/SARP/VRL-Skip deferral machinery.
//
// The load-bearing property: every legacy policy driven through the new
// GrantRefreshes path emits the byte-identical op stream its CollectDue
// shim emits, and the parallel experiment drivers stay bit-identical at
// every thread count (the tests/golden fixtures pin the end-to-end bench
// output; these tests pin the mechanism).

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/experiments.hpp"
#include "core/vrl_system.hpp"
#include "dram/bank.hpp"
#include "dram/policy_registry.hpp"
#include "dram/refresh_policy.hpp"
#include "dram/scheduler.hpp"
#include "dram/timing_table.hpp"
#include "dram/topology.hpp"
#include "fault/adaptive_policy.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/trace_export.hpp"

namespace {

using namespace vrl;

bool SameOp(const dram::RefreshOp& a, const dram::RefreshOp& b) {
  return a.row == b.row && a.trfc == b.trfc && a.is_full == b.is_full &&
         a.granularity == b.granularity;
}

/// Grants with no bank context: the shim replay used by campaign/integrity.
std::vector<dram::RefreshOp> GrantAll(dram::RefreshPolicy& policy,
                                      Cycles now) {
  dram::RefreshGrantContext ctx;
  ctx.now = now;
  ctx.demand.now = now;
  return dram::GrantRefreshes(policy, ctx);
}

core::VrlConfig SmallConfig() {
  core::VrlConfig config;
  config.tech.rows = 512;
  return config;
}

// ---------------------------------------------------------------------------
// Shim byte-identity
// ---------------------------------------------------------------------------

TEST(RefreshApiShim, LegacyPoliciesByteIdenticalThroughProposeGrant) {
  const core::VrlSystem system(SmallConfig());
  const Cycles t_refi = system.config().timing.t_refi;
  const Cycles horizon = system.HorizonForWindows(2);

  for (const core::PolicyKind kind :
       {core::PolicyKind::kJedec, core::PolicyKind::kRaidr,
        core::PolicyKind::kVrl, core::PolicyKind::kVrlAccess}) {
    auto legacy = system.MakePolicyFactory(kind)();
    auto granted = system.MakePolicyFactory(kind)();
    for (Cycles tick = 0; tick <= horizon; tick += t_refi) {
      const auto ops_a = legacy->CollectDue(tick);
      const auto ops_b = GrantAll(*granted, tick);
      ASSERT_EQ(ops_a.size(), ops_b.size())
          << core::PolicyName(kind) << " at tick " << tick;
      for (std::size_t i = 0; i < ops_a.size(); ++i) {
        ASSERT_TRUE(SameOp(ops_a[i], ops_b[i]))
            << core::PolicyName(kind) << " op " << i << " at tick " << tick;
      }
      // Exercise the activation-reset path identically on both instances.
      if (tick / t_refi % 7 == 0) {
        const std::size_t row = (tick / t_refi) % legacy->rows();
        legacy->OnRowAccess(row);
        granted->OnRowAccess(row);
      }
    }
  }
}

TEST(RefreshApiShim, AdaptiveWrapperByteIdenticalThroughProposeGrant) {
  const core::VrlSystem system(SmallConfig());
  const auto& config = system.config();
  const Cycles t_refi = config.timing.t_refi;
  const Cycles horizon = system.HorizonForWindows(2);
  const auto plan = dram::MakeRefreshPlan(
      system.binning(), config.tech.clock_period_s, system.row_mprsf());

  fault::AdaptiveVrlPolicy legacy(system.MakePolicyFactory(
                                      core::PolicyKind::kVrl)(),
                                  plan, system.TauFullCycles(),
                                  system.TauPartialCycles(),
                                  config.timing.t_refw, t_refi);
  fault::AdaptiveVrlPolicy granted(system.MakePolicyFactory(
                                       core::PolicyKind::kVrl)(),
                                   plan, system.TauFullCycles(),
                                   system.TauPartialCycles(),
                                   config.timing.t_refw, t_refi);

  for (Cycles tick = 0; tick <= horizon; tick += t_refi) {
    const auto ops_a = legacy.CollectDue(tick);
    const auto ops_b = GrantAll(granted, tick);
    ASSERT_EQ(ops_a.size(), ops_b.size()) << "at tick " << tick;
    for (std::size_t i = 0; i < ops_a.size(); ++i) {
      ASSERT_TRUE(SameOp(ops_a[i], ops_b[i])) << "op " << i << " at tick "
                                              << tick;
    }
    // Mirror a sensing failure mid-run so the demotion machinery is
    // exercised through both paths.
    if (tick == 64 * t_refi) {
      legacy.OnSensingFailure(3, tick);
      granted.OnSensingFailure(3, tick);
    }
  }
}

TEST(RefreshApiShim, SuiteTelemetryAndLineageIdenticalAcrossThreadCounts) {
  const core::VrlSystem system(SmallConfig());

  std::vector<core::WorkloadResult> base_results;
  telemetry::MetricsSnapshot base_snapshot;
  std::string base_lineage;
  bool have_base = false;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ScopedThreadCount scoped(threads);
    telemetry::RecorderOptions options;
    options.enable_tracing = true;
    options.tracing.lineage_ops = true;
    telemetry::Recorder recorder(options);

    core::ExperimentOptions experiment;
    experiment.windows = 1;
    experiment.telemetry = &recorder;
    const auto results = core::RunEvaluationSuite(system, experiment);

    const auto snapshot = recorder.Snapshot().WithoutTimers();
    std::ostringstream lineage;
    telemetry::WriteLineageJsonl(lineage, *recorder.tracer());

    if (!have_base) {
      base_results = results;
      base_snapshot = snapshot;
      base_lineage = lineage.str();
      have_base = true;
      EXPECT_FALSE(base_snapshot.metrics.empty());
      continue;
    }
    EXPECT_EQ(base_results, results) << "threads=" << threads;
    EXPECT_EQ(base_snapshot, snapshot) << "threads=" << threads;
    EXPECT_EQ(base_lineage, lineage.str()) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Deferral-window edge cases
// ---------------------------------------------------------------------------

TEST(RefreshDeferral, DemandBurstDefersUntilDeadlineForcesTheGrant) {
  const dram::TimingParams timing;
  dram::Bank bank(1, timing);
  dram::DarpPolicy policy(1, 1000, 50, 300);  // row 0 due at cycle 0

  const auto grant_at = [&](Cycles now, Cycles next_arrival,
                            dram::RefreshGrantStats& stats) {
    dram::RefreshGrantContext ctx;
    ctx.now = now;
    ctx.demand.now = now;
    ctx.demand.has_next = true;
    ctx.demand.next_arrival = next_arrival;
    ctx.demand.next_row = 0;
    ctx.bank = &bank;
    return dram::GrantRefreshes(policy, ctx, &stats);
  };

  // Non-urgent proposal vs. imminent demand: deferred, stays outstanding.
  dram::RefreshGrantStats stats;
  EXPECT_TRUE(grant_at(0, 10, stats).empty());
  EXPECT_EQ(stats.deferred, 1u);
  EXPECT_EQ(policy.outstanding(), 1u);

  // Still inside the window, demand still imminent: still deferred.
  EXPECT_TRUE(grant_at(100, 110, stats).empty());
  EXPECT_EQ(stats.deferred, 2u);

  // Deadline (due 0 + window 300) reached: granted despite the burst.
  const auto forced = grant_at(300, 310, stats);
  ASSERT_EQ(forced.size(), 1u);
  EXPECT_EQ(forced[0].row, 0u);
  EXPECT_EQ(forced[0].granularity, dram::RefreshGranularity::kPerBank);
  EXPECT_EQ(stats.urgent_grants, 1u);
  EXPECT_EQ(policy.outstanding(), 0u);

  // Re-arm anchors at the *due* cycle (0 + period 1000), not the grant
  // cycle: deferral must never stretch the retention schedule.
  dram::RefreshGrantStats quiet;
  EXPECT_TRUE(GrantAll(policy, 999).empty());
  const auto rearmed = grant_at(1000, dram::DemandView::kNever, quiet);
  ASSERT_EQ(rearmed.size(), 1u);
  EXPECT_EQ(quiet.urgent_grants, 0u);  // granted on time, not forced
}

TEST(RefreshDeferral, ActivationWindowPressureDefersRefpb) {
  const dram::TimingTable table =
      dram::MakeTimingTable(dram::TimingPreset::kDdr4_2400);
  ASSERT_NE(table.t_faw, 0u);
  dram::ConstraintEngine engine(table);
  const dram::BankAddress addr = dram::DecomposeBank(table.topology, 0);
  dram::Bank bank(1, table.core);
  bank.SetConstraintEngine(&engine, addr);

  // Four demand ACTs saturate the rank's tFAW window.
  for (int i = 0; i < 4; ++i) {
    const Cycles at = 100 + static_cast<Cycles>(i) * table.t_rrd_l;
    engine.RecordActivate(addr, engine.EarliestActivate(addr, at));
  }
  const Cycles pressured = 100 + 3 * table.t_rrd_l + 1;
  ASSERT_GT(engine.PeekActivate(addr, pressured), pressured);

  dram::DarpPolicy policy(1, 100'000, 50, 50'000);  // row 0 due at cycle 0
  dram::RefreshGrantContext ctx;
  ctx.now = pressured;
  ctx.demand.now = pressured;
  ctx.bank = &bank;
  ctx.engine = &engine;
  ctx.addr = addr;

  // No demand queued, but the REFpb cannot issue inside the closed
  // activation window: deferred.
  dram::RefreshGrantStats stats;
  EXPECT_TRUE(dram::GrantRefreshes(policy, ctx, &stats).empty());
  EXPECT_EQ(stats.deferred, 1u);

  // Once the window reopens the proposal is granted.
  Cycles open = pressured;
  while (engine.PeekActivate(addr, open) > open) {
    open = engine.PeekActivate(addr, open);
  }
  ctx.now = open;
  ctx.demand.now = open;
  const auto ops = dram::GrantRefreshes(policy, ctx, &stats);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].granularity, dram::RefreshGranularity::kPerBank);
}

TEST(RefreshDeferral, SarpOverlapsDemandToOtherSubarrays) {
  const dram::TimingParams timing;
  dram::Bank bank(8, timing, dram::RowBufferPolicy::kOpenPage, 2);
  ASSERT_EQ(bank.SubarrayOf(2), 0u);
  ASSERT_EQ(bank.SubarrayOf(5), 1u);

  const auto grant_with_demand = [&](dram::SarpPolicy& policy,
                                     std::size_t demand_row) {
    dram::RefreshGrantContext ctx;
    ctx.now = 0;
    ctx.demand.now = 0;
    ctx.demand.has_next = true;
    ctx.demand.next_arrival = 10;
    ctx.demand.next_row = demand_row;
    ctx.bank = &bank;
    return dram::GrantRefreshes(policy, ctx);
  };

  // Row 0 (subarray 0) comes due at cycle 0.  Demand to subarray 1 does
  // not collide: the refresh is granted and runs in parallel.
  dram::SarpPolicy parallel(8, 1000, 50, 300);
  const auto ops = grant_with_demand(parallel, 5);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].granularity, dram::RefreshGranularity::kSubarray);

  // Same-subarray demand collides: deferred.
  dram::SarpPolicy colliding(8, 1000, 50, 300);
  EXPECT_TRUE(grant_with_demand(colliding, 2).empty());
  EXPECT_EQ(colliding.outstanding(), 1u);
}

TEST(RefreshDeferral, VrlSkipSkipsRecentlyRestoredRows) {
  dram::RowRefreshPlan plan;
  plan.period_cycles = {1000, 1000};
  plan.mprsf = {1, 1};
  dram::VrlSkipPolicy policy(plan, 50, 20, 300);

  // Row 0 comes due at 0 and is granted; row 1 is due at 500.
  auto ops = GrantAll(policy, 0);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].row, 0u);

  // An access fully restores row 1 at tick 0: its scheduled refresh at 500
  // is stale and gets skipped, rescheduled one period after the restore.
  policy.OnRowAccess(1);
  EXPECT_TRUE(GrantAll(policy, 500).empty());
  EXPECT_EQ(policy.skipped(), 1u);

  // At the rescheduled point (restore 0 + period 1000) it refreshes, and
  // the access reset its MPRSF counter so the op is a partial.
  ops = GrantAll(policy, 1000);
  ASSERT_EQ(ops.size(), 2u);  // row 0's re-arm lands at 1000 too
  for (const auto& op : ops) {
    if (op.row == 1) {
      EXPECT_FALSE(op.is_full);
    }
  }
}

// ---------------------------------------------------------------------------
// REFpb execution and timing-table plumbing
// ---------------------------------------------------------------------------

TEST(RefreshGranularity, BankLevelRefreshBlocksEverySubarray) {
  const dram::TimingParams timing;
  dram::Bank bank(8, timing, dram::RowBufferPolicy::kOpenPage, 2);

  dram::RefreshOp sub;
  sub.row = 0;
  sub.trfc = 50;
  const Cycles sub_done = bank.ExecuteRefresh(sub, 0);
  EXPECT_EQ(bank.SubarrayBusyUntil(0), sub_done);
  EXPECT_EQ(bank.SubarrayBusyUntil(1), 0u);  // SALP: other subarray free

  dram::RefreshOp refpb;
  refpb.row = 0;
  refpb.trfc = 50;
  refpb.granularity = dram::RefreshGranularity::kPerBank;
  const Cycles pb_done = bank.ExecuteRefresh(refpb, sub_done);
  EXPECT_EQ(bank.SubarrayBusyUntil(0), pb_done);
  EXPECT_EQ(bank.SubarrayBusyUntil(1), pb_done);
}

TEST(RefreshGranularity, TimingTableCarriesAndValidatesTrfcPb) {
  const dram::TimingTable lpddr4 =
      dram::MakeTimingTable(dram::TimingPreset::kLpddr4_3200);
  EXPECT_NE(lpddr4.t_rfc_pb, 0u);
  EXPECT_LE(lpddr4.t_rfc_pb, lpddr4.t_rfc);

  dram::TimingTable bad = lpddr4;
  bad.t_rfc_pb = bad.t_rfc + 1;
  EXPECT_THROW(bad.Validate(), ConfigError);
}

// ---------------------------------------------------------------------------
// Policy registry
// ---------------------------------------------------------------------------

TEST(PolicyRegistry, RoundTripsEveryEntryThroughPolicyKind) {
  const auto& registry = dram::PolicyRegistry::Global();
  ASSERT_EQ(registry.entries().size(), 7u);
  for (const dram::PolicyInfo& info : registry.entries()) {
    const core::PolicyKind kind = core::PolicyFromName(info.name);
    EXPECT_EQ(core::PolicyName(kind), info.name);
    EXPECT_FALSE(info.description.empty());
  }
}

TEST(PolicyRegistry, CanonicalizesSpellings) {
  const auto& registry = dram::PolicyRegistry::Global();
  EXPECT_EQ(registry.Get("vrl_skip").name, "VRL-Skip");
  EXPECT_EQ(registry.Get("VRLACCESS").name, "VRL-Access");
  EXPECT_EQ(registry.Get("darp").name, "DARP");
  EXPECT_EQ(registry.Find("nope"), nullptr);
}

TEST(PolicyRegistry, UnknownNameListsEveryValidName) {
  try {
    dram::PolicyRegistry::Global().Get("bogus");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    for (const char* name :
         {"JEDEC", "RAIDR", "VRL", "VRL-Access", "VRL-Skip", "DARP",
          "SARP"}) {
      EXPECT_NE(what.find(name), std::string::npos) << name;
    }
  }
}

TEST(PolicyRegistry, BuildsEveryEntryAndValidatesMissingInputs) {
  dram::PolicyBuildContext ctx;
  ctx.rows = 4;
  ctx.base_window = 1000;
  ctx.t_refi = 125;
  ctx.trfc_full = 50;
  ctx.trfc_partial = 20;
  ctx.binned_plan.period_cycles = {1000, 2000, 1000, 2000};
  ctx.vrl_plan.period_cycles = {1000, 2000, 1000, 2000};
  ctx.vrl_plan.mprsf = {1, 2, 1, 2};

  const auto& registry = dram::PolicyRegistry::Global();
  for (const dram::PolicyInfo& info : registry.entries()) {
    const auto policy = registry.Build(info.name, ctx);
    ASSERT_NE(policy, nullptr) << info.name;
    EXPECT_EQ(policy->Name(), info.name);
    EXPECT_EQ(policy->rows(), 4u) << info.name;
  }

  dram::PolicyBuildContext empty;
  EXPECT_THROW(registry.Build("JEDEC", empty), ConfigError);
  EXPECT_THROW(registry.Build("VRL", empty), ConfigError);
  EXPECT_THROW(registry.Build("DARP", empty), ConfigError);
}

TEST(PolicyRegistry, SchedulerEntriesRoundTrip) {
  for (const dram::SchedulerInfo& info : dram::SchedulerEntries()) {
    EXPECT_EQ(dram::SchedulerName(info.kind), info.name);
    EXPECT_EQ(dram::SchedulerFromName(info.name), info.kind);
  }
  EXPECT_EQ(dram::SchedulerFromName("fr_fcfs"), dram::SchedulerKind::kFrFcfs);
  try {
    dram::SchedulerFromName("rr");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("FR-FCFS"), std::string::npos);
  }
}

}  // namespace
