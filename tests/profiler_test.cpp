// Tests for the simulated retention profiler (REAPER-style measurement).

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "retention/distribution.hpp"
#include "retention/profiler.hpp"
#include "retention/vrt.hpp"

namespace vrl::retention {
namespace {

RetentionProfile FixedTruth() {
  return RetentionProfile({0.07, 0.2, 0.3, 1.0, 5.0});
}

TEST(ProfilingCampaignTest, StandardCampaignValidates) {
  EXPECT_NO_THROW(StandardCampaign().Validate());
}

TEST(ProfilingCampaignTest, RejectsBadCampaigns) {
  ProfilingCampaign campaign;
  EXPECT_THROW(campaign.Validate(), ConfigError);  // no periods
  campaign.test_periods_s = {0.128, 0.064};
  EXPECT_THROW(campaign.Validate(), ConfigError);  // unsorted
  campaign.test_periods_s = {0.064};
  campaign.rounds = 0;
  EXPECT_THROW(campaign.Validate(), ConfigError);
  campaign.rounds = 1;
  campaign.derating = 0.5;
  EXPECT_THROW(campaign.Validate(), ConfigError);
}

TEST(MeasureProfileTest, BinsOntoGridConservatively) {
  Rng rng(1);
  const auto truth = FixedTruth();
  const auto measured =
      MeasureProfile(truth, {}, VrtParams{}, StandardCampaign(), rng);
  // Each measurement is the largest grid period <= truth.
  EXPECT_DOUBLE_EQ(measured.RowRetention(0), 0.064);  // 70ms -> 64ms
  EXPECT_DOUBLE_EQ(measured.RowRetention(1), 0.192);  // 200ms -> 192ms
  EXPECT_DOUBLE_EQ(measured.RowRetention(2), 0.256);  // 300ms -> 256ms
  EXPECT_DOUBLE_EQ(measured.RowRetention(3), 0.512);  // 1s -> 512ms
  EXPECT_DOUBLE_EQ(measured.RowRetention(4), 4.096);  // 5s -> grid max
}

TEST(MeasureProfileTest, NeverExceedsTruthWithoutVrt) {
  Rng rng(7);
  const RetentionDistribution dist;
  const auto truth = RetentionProfile::Generate(dist, 512, 32, rng);
  const auto measured =
      MeasureProfile(truth, {}, VrtParams{}, StandardCampaign(), rng);
  for (std::size_t r = 0; r < truth.rows(); ++r) {
    EXPECT_LE(measured.RowRetention(r), truth.RowRetention(r) + 1e-12);
  }
  EXPECT_DOUBLE_EQ(OptimisticMissRate(measured, truth), 0.0);
}

TEST(MeasureProfileTest, DeratingShrinksMeasurements) {
  Rng rng_a(3);
  Rng rng_b(3);
  const auto truth = FixedTruth();
  ProfilingCampaign plain = StandardCampaign();
  ProfilingCampaign derated = StandardCampaign();
  derated.derating = 2.0;
  const auto m_plain = MeasureProfile(truth, {}, VrtParams{}, plain, rng_a);
  const auto m_derated =
      MeasureProfile(truth, {}, VrtParams{}, derated, rng_b);
  for (std::size_t r = 0; r < truth.rows(); ++r) {
    EXPECT_LE(m_derated.RowRetention(r), m_plain.RowRetention(r) + 1e-12);
  }
}

TEST(MeasureProfileTest, VrtCausesOptimisticMisses) {
  Rng rng(11);
  const RetentionDistribution dist;
  const auto truth = RetentionProfile::Generate(dist, 2048, 32, rng);
  VrtParams vrt;
  vrt.row_fraction = 0.1;
  vrt.low_ratio = 0.5;
  vrt.low_state_prob = 0.3;
  const auto vrt_rows = SampleVrtRows(vrt, truth.rows(), rng);
  const auto worst = WorstCaseRuntimeProfile(truth, vrt_rows, vrt);

  ProfilingCampaign one_round = StandardCampaign();
  one_round.rounds = 1;
  const auto measured = MeasureProfile(truth, vrt_rows, vrt, one_round, rng);
  EXPECT_GT(OptimisticMissRate(measured, worst), 0.0);
}

TEST(MeasureProfileTest, MoreRoundsReduceMisses) {
  Rng rng(13);
  const RetentionDistribution dist;
  const auto truth = RetentionProfile::Generate(dist, 4096, 32, rng);
  VrtParams vrt;
  vrt.row_fraction = 0.1;
  vrt.low_ratio = 0.5;
  vrt.low_state_prob = 0.4;
  const auto vrt_rows = SampleVrtRows(vrt, truth.rows(), rng);
  const auto worst = WorstCaseRuntimeProfile(truth, vrt_rows, vrt);

  const auto miss_at = [&](std::size_t rounds) {
    ProfilingCampaign campaign = StandardCampaign();
    campaign.rounds = rounds;
    Rng measure_rng(5);
    const auto measured =
        MeasureProfile(truth, vrt_rows, vrt, campaign, measure_rng);
    return OptimisticMissRate(measured, worst);
  };
  EXPECT_GT(miss_at(1), miss_at(8));
}

TEST(MeasureProfileTest, DeratingByVrtRatioIsSafe) {
  Rng rng(17);
  const RetentionDistribution dist;
  const auto truth = RetentionProfile::Generate(dist, 2048, 32, rng);
  VrtParams vrt;
  vrt.row_fraction = 0.1;
  vrt.low_ratio = 0.6;
  const auto vrt_rows = SampleVrtRows(vrt, truth.rows(), rng);
  const auto worst = WorstCaseRuntimeProfile(truth, vrt_rows, vrt);

  ProfilingCampaign campaign = StandardCampaign();
  campaign.rounds = 1;
  campaign.derating = 1.0 / vrt.low_ratio;
  const auto measured = MeasureProfile(truth, vrt_rows, vrt, campaign, rng);

  // The only possible "misses" are rows clamped at the grid floor, whose
  // worst-case runtime retention dips below the smallest test period.
  for (std::size_t r = 0; r < truth.rows(); ++r) {
    if (measured.RowRetention(r) > worst.RowRetention(r)) {
      EXPECT_DOUBLE_EQ(measured.RowRetention(r),
                       campaign.test_periods_s.front());
    }
  }
}

TEST(MeasureProfileTest, RejectsSizeMismatch) {
  Rng rng(1);
  const auto truth = FixedTruth();
  EXPECT_THROW(MeasureProfile(truth, std::vector<bool>(3, false), VrtParams{},
                              StandardCampaign(), rng),
               ConfigError);
}

TEST(OptimisticMissRateTest, CountsOnlyOptimism) {
  const RetentionProfile measured({0.064, 0.256, 0.5});
  const RetentionProfile worst({0.07, 0.2, 0.5});
  // Row 0 pessimistic (fine), row 1 optimistic (miss), row 2 equal (fine).
  EXPECT_NEAR(OptimisticMissRate(measured, worst), 1.0 / 3.0, 1e-12);
  const RetentionProfile wrong({1.0});
  EXPECT_THROW(OptimisticMissRate(measured, wrong), ConfigError);
}

}  // namespace
}  // namespace vrl::retention
