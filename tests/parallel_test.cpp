// Reproducibility harness for the deterministic parallel executor
// (common/parallel.hpp) and the fan-outs built on it.
//
// Three layers:
//  1. Property tests of the executor itself: coverage, completion-order
//     independence, exception propagation without deadlock, nested use,
//     thread-count resolution, TaskSeed purity.
//  2. Determinism regressions: RunSweep and the fault-campaign legs must be
//     bit-identical at 1, 2 and 8 threads (the docs/PARALLEL.md contract —
//     exact ==, no tolerances).
//  3. Pinned shared-state fixes: the resilience legs each own their options
//     and schedule (they used to mutate one shared options struct between
//     legs, an ordering dependency that would race once legs overlap).

#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/experiments.hpp"
#include "core/sweep.hpp"

namespace vrl {
namespace {

// ---------------------------------------------------------------------------
// 1. Executor properties
// ---------------------------------------------------------------------------

TEST(ParallelFor, ZeroItemsCompletesWithoutCallingBody) {
  std::atomic<int> calls{0};
  ParallelFor(0, [&](std::size_t) { ++calls; }, 4);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, OneItemRunsInline) {
  std::atomic<int> calls{0};
  ParallelFor(
      1,
      [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        // A single item never leaves the calling thread.
        EXPECT_FALSE(InParallelRegion());
        ++calls;
      },
      4);
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelFor, EveryIndexRunsExactlyOnceWithItemsFarExceedingThreads) {
  constexpr std::size_t kItems = 5000;
  std::vector<int> hits(kItems, 0);  // Disjoint slots: no synchronization.
  std::atomic<std::size_t> calls{0};
  ParallelFor(
      kItems,
      [&](std::size_t i) {
        ++hits[i];
        calls.fetch_add(1, std::memory_order_relaxed);
      },
      4);
  EXPECT_EQ(calls.load(), kItems);
  for (std::size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ParallelFor, ResultsIndependentOfCompletionOrder) {
  // Early indices sleep longest, so with one thread per item the completion
  // order is roughly the reverse of the index order; index-slot collection
  // must not care.
  constexpr std::size_t kItems = 8;
  std::vector<std::size_t> slots(kItems, 0);
  ParallelFor(
      kItems,
      [&](std::size_t i) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(2 * (kItems - i)));
        slots[i] = i * i + 1;
      },
      kItems);
  for (std::size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(slots[i], i * i + 1);
  }
}

TEST(ParallelFor, ExceptionPropagatesAndDoesNotDeadlock) {
  std::atomic<std::size_t> calls{0};
  EXPECT_THROW(
      ParallelFor(
          100,
          [&](std::size_t i) {
            calls.fetch_add(1, std::memory_order_relaxed);
            if (i == 7) {
              throw std::runtime_error("item 7 failed");
            }
          },
          4),
      std::runtime_error);
  // The failing fan-out aborts early: not every item needs to have run,
  // but the throwing one did.
  EXPECT_GE(calls.load(), 8u);
  EXPECT_LE(calls.load(), 100u);
}

TEST(ParallelFor, SerialFallbackPropagatesExceptionsToo) {
  EXPECT_THROW(ParallelFor(
                   3,
                   [](std::size_t i) {
                     if (i == 1) {
                       throw std::runtime_error("serial item failed");
                     }
                   },
                   1),
               std::runtime_error);
}

TEST(ParallelFor, NestedUseIsSafeAndRunsInline) {
  constexpr std::size_t kOuter = 4;
  constexpr std::size_t kInner = 8;
  std::vector<std::vector<int>> matrix(kOuter, std::vector<int>(kInner, 0));
  std::atomic<int> nested_inline{0};
  ParallelFor(
      kOuter,
      [&](std::size_t o) {
        EXPECT_TRUE(InParallelRegion());
        ParallelFor(
            kInner,
            [&](std::size_t i) {
              matrix[o][i] = static_cast<int>(o * kInner + i);
              nested_inline.fetch_add(1, std::memory_order_relaxed);
            },
            kInner);
      },
      kOuter);
  EXPECT_FALSE(InParallelRegion());
  EXPECT_EQ(nested_inline.load(), static_cast<int>(kOuter * kInner));
  for (std::size_t o = 0; o < kOuter; ++o) {
    for (std::size_t i = 0; i < kInner; ++i) {
      EXPECT_EQ(matrix[o][i], static_cast<int>(o * kInner + i));
    }
  }
}

TEST(ParallelMap, CollectsIntoIndexSlots) {
  const auto squares =
      ParallelMap(10, [](std::size_t i) { return i * i; }, 3);
  ASSERT_EQ(squares.size(), 10u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

TEST(ThreadPool, WaitRethrowsFirstTaskErrorAndPoolStaysUsable) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([&] { ++ran; });
  pool.Submit([] { throw std::runtime_error("task failed"); });
  pool.Submit([&] { ++ran; });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The error is consumed; the pool accepts and runs further work.
  pool.Submit([&] { ++ran; });
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadCount, ScopedOverrideWinsAndRestores) {
  SetThreadCountOverride(0);
  {
    const ScopedThreadCount outer(3);
    EXPECT_EQ(DefaultThreadCount(), 3u);
    {
      const ScopedThreadCount inner(5);
      EXPECT_EQ(DefaultThreadCount(), 5u);
    }
    EXPECT_EQ(DefaultThreadCount(), 3u);
  }
  EXPECT_GE(DefaultThreadCount(), 1u);
}

TEST(ThreadCount, VrlThreadsEnvironmentVariableIsParsed) {
  SetThreadCountOverride(0);
  ::setenv("VRL_THREADS", "7", 1);
  EXPECT_EQ(DefaultThreadCount(), 7u);
  ::setenv("VRL_THREADS", "not-a-number", 1);
  EXPECT_GE(DefaultThreadCount(), 1u);  // Malformed: hardware fallback.
  ::setenv("VRL_THREADS", "0", 1);
  EXPECT_GE(DefaultThreadCount(), 1u);  // Zero: hardware fallback.
  ::unsetenv("VRL_THREADS");
  const ScopedThreadCount override_beats_env(2);
  ::setenv("VRL_THREADS", "9", 1);
  EXPECT_EQ(DefaultThreadCount(), 2u);
  ::unsetenv("VRL_THREADS");
}

TEST(TaskSeedTest, PureDistinctAndIndependentStreams) {
  EXPECT_EQ(TaskSeed(42, 17), TaskSeed(42, 17));  // Pure function.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seeds.insert(TaskSeed(42, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);  // No collisions across indices.
  EXPECT_NE(TaskSeed(1, 0), TaskSeed(2, 0));  // Base seed matters.
  // Adjacent indices give unrelated Rng streams.
  Rng a(TaskSeed(42, 0));
  Rng b(TaskSeed(42, 1));
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (a() == b()) ? 1 : 0;
  }
  EXPECT_EQ(equal, 0);
}

// ---------------------------------------------------------------------------
// 2. Determinism regressions (the ctest acceptance targets)
// ---------------------------------------------------------------------------

void ExpectSweepBitIdentical(const std::vector<core::SweepResult>& a,
                             const std::vector<core::SweepResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Exact comparison on purpose: the contract is bit-identity, not
    // closeness.
    EXPECT_EQ(a[i].vrl_normalized, b[i].vrl_normalized) << i;
    EXPECT_EQ(a[i].vrl_access_normalized, b[i].vrl_access_normalized) << i;
    EXPECT_EQ(a[i].logic_area_um2, b[i].logic_area_um2) << i;
    EXPECT_EQ(a[i].area_fraction, b[i].area_fraction) << i;
    EXPECT_EQ(a[i].mean_mprsf, b[i].mean_mprsf) << i;
    EXPECT_EQ(a[i].clamped_rows, b[i].clamped_rows) << i;
  }
}

TEST(Determinism, RunSweepBitIdenticalAtOneTwoAndEightThreads) {
  core::VrlConfig base;
  base.banks = 1;
  std::vector<core::SweepPoint> points(3);
  points[1].nbits = 1;
  points[2].retention_guardband = 1.3;
  const auto workload = trace::SuiteWorkload("swaptions");

  std::vector<std::vector<core::SweepResult>> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const ScopedThreadCount scoped(threads);
    runs.push_back(core::RunSweep(base, points, workload, 1));
  }
  ExpectSweepBitIdentical(runs[0], runs[1]);
  ExpectSweepBitIdentical(runs[0], runs[2]);
}

void ExpectReportBitIdentical(const fault::CampaignReport& a,
                              const fault::CampaignReport& b) {
  EXPECT_EQ(a.refreshes, b.refreshes);
  EXPECT_EQ(a.partial_refreshes, b.partial_refreshes);
  EXPECT_EQ(a.detected_failures, b.detected_failures);
  EXPECT_EQ(a.corrected_failures, b.corrected_failures);
  EXPECT_EQ(a.unrecovered_failures, b.unrecovered_failures);
  EXPECT_EQ(a.min_margin, b.min_margin);  // Exact, not approximate.
  EXPECT_EQ(a.refresh_busy_cycles, b.refresh_busy_cycles);
  EXPECT_EQ(a.simulated_cycles, b.simulated_cycles);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].row, b.events[i].row);
    EXPECT_EQ(a.events[i].at_cycle, b.events[i].at_cycle);
    EXPECT_EQ(a.events[i].margin, b.events[i].margin);
    EXPECT_EQ(a.events[i].corrected, b.events[i].corrected);
  }
  EXPECT_EQ(a.adaptive.demotions, b.adaptive.demotions);
  EXPECT_EQ(a.adaptive.promotions, b.adaptive.promotions);
  EXPECT_EQ(a.adaptive.failures_signalled, b.adaptive.failures_signalled);
}

TEST(Determinism, FaultCampaignLegsBitIdenticalAtOneTwoAndEightThreads) {
  core::VrlConfig config;
  config.banks = 1;
  const core::VrlSystem system(config);
  const retention::VrtParams vrt;

  std::vector<core::ResilienceResult> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const ScopedThreadCount scoped(threads);
    runs.push_back(core::RunResilienceComparison(
        system, core::PolicyKind::kVrl, vrt, /*windows=*/4,
        /*fault_seed=*/0xFA11ULL));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ExpectReportBitIdentical(runs[0].jedec, runs[r].jedec);
    ExpectReportBitIdentical(runs[0].plain, runs[r].plain);
    ExpectReportBitIdentical(runs[0].adaptive, runs[r].adaptive);
  }
}

// ---------------------------------------------------------------------------
// 3. Pinned shared-state fixes
// ---------------------------------------------------------------------------

// The resilience legs must behave as if each were the only leg: identical
// to running the three campaigns by hand with per-leg schedules and
// options.  Before the parallel conversion the legs shared one mutable
// FaultCampaignOptions struct (adaptive toggled between runs), so leg
// results depended on execution order.
TEST(SharedState, ResilienceLegsMatchIndependentlyBuiltCampaigns) {
  core::VrlConfig config;
  config.banks = 1;
  const core::VrlSystem system(config);
  const retention::VrtParams vrt;
  constexpr std::size_t kWindows = 4;
  constexpr std::uint64_t kSeed = 77;

  const ScopedThreadCount scoped(8);
  const auto comparison = core::RunResilienceComparison(
      system, core::PolicyKind::kVrl, vrt, kWindows, kSeed);

  const auto run_leg = [&](core::PolicyKind kind, bool adaptive) {
    fault::FaultSchedule faults(kSeed);
    faults.Add(std::make_unique<fault::VrtFlipInjector>(vrt));
    core::FaultCampaignOptions options;
    options.windows = kWindows;
    options.adaptive = adaptive;
    return system.RunFaultCampaign(kind, faults, options);
  };
  ExpectReportBitIdentical(comparison.jedec,
                           run_leg(core::PolicyKind::kJedec, false));
  ExpectReportBitIdentical(comparison.plain,
                           run_leg(core::PolicyKind::kVrl, false));
  ExpectReportBitIdentical(comparison.adaptive,
                           run_leg(core::PolicyKind::kVrl, true));

  // The non-adaptive legs carry no adaptive state: the shared options
  // struct can no longer leak adaptive=true into them, whatever order the
  // legs completed in.
  EXPECT_EQ(comparison.jedec.adaptive.demotions, 0u);
  EXPECT_EQ(comparison.jedec.adaptive.failures_signalled, 0u);
  EXPECT_EQ(comparison.plain.adaptive.demotions, 0u);
  EXPECT_EQ(comparison.plain.adaptive.failures_signalled, 0u);
  EXPECT_EQ(comparison.plain.corrected_failures, 0u);
}

}  // namespace
}  // namespace vrl
